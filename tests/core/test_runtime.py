"""Tests for the closed-loop autoscaling runtime."""

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ReactiveAvgScaler, ScalingPlan
from repro.core.plan import required_nodes


class OraclePlanner:
    """Plans exactly the workload it will be asked to serve (test double)."""

    name = "oracle"

    def __init__(self, series, horizon, threshold):
        self.series = np.asarray(series, dtype=float)
        self.horizon = horizon
        self.threshold = threshold
        self.calls = []

    def plan(self, context, start_index=0):
        self.calls.append(start_index)
        future = self.series[start_index + len(context) :][: self.horizon]
        return ScalingPlan(
            nodes=required_nodes(future, self.threshold),
            threshold=self.threshold,
            strategy="oracle",
        )


def make_runtime(series, context=6, horizon=4, replan=None, threshold=60.0):
    planner = OraclePlanner(series, horizon, threshold)
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=context,
        horizon=horizon,
        threshold=threshold,
        replan_every=replan,
    )
    return runtime, planner


class TestColdStart:
    def test_first_interval_single_node(self):
        runtime, _ = make_runtime(np.full(20, 100.0))
        assert runtime.target_nodes() == 1

    def test_fallback_reacts_before_context_fills(self):
        series = np.full(20, 600.0)
        runtime, planner = make_runtime(series)
        allocations = []
        for value in series[:5]:
            allocations.append(runtime.target_nodes())
            runtime.observe(value)
        # After the first observation the fallback sees 600 -> 10 nodes.
        assert allocations[0] == 1
        assert allocations[1] == 10
        assert planner.calls == []  # predictive planning not yet possible


class TestPredictivePhase:
    def test_replans_on_schedule(self):
        series = np.full(30, 300.0)
        runtime, planner = make_runtime(series, context=6, horizon=4)
        runtime.run(series)
        # First plan at t=6, then every 4 steps: 6, 10, 14, ...
        assert planner.calls[0] == 0  # start_index of the context window
        diffs = np.diff([c for c in planner.calls])
        assert np.all(diffs == 4)

    def test_receding_horizon_mode(self):
        series = np.full(30, 300.0)
        runtime, planner = make_runtime(series, context=6, horizon=4, replan=1)
        runtime.run(series)
        diffs = np.diff([c for c in planner.calls])
        assert np.all(diffs == 1)

    def test_oracle_runtime_never_underprovisions_after_warmup(self):
        rng = np.random.default_rng(0)
        series = rng.uniform(100, 2000, size=60)
        runtime, _ = make_runtime(series, context=6, horizon=4)
        allocations = runtime.run(series)
        needed = required_nodes(series, 60.0)
        # After the context fills (first 6 steps + first plan boundary),
        # the oracle-backed runtime is exact.
        assert np.array_equal(allocations[6:], needed[6:])

    def test_decisions_logged(self):
        series = np.full(30, 300.0)
        runtime, planner = make_runtime(series)
        runtime.run(series)
        assert runtime.decisions
        # The docstring promises "records every decision": the 6
        # cold-start fallback activations AND every predictive plan.
        fallback = [d for d in runtime.decisions if d.source == "reactive-fallback"]
        predictive = [d for d in runtime.decisions if d.source == "predictive"]
        assert len(fallback) == 6
        assert len(predictive) == len(planner.calls)
        assert len(runtime.decisions) == len(fallback) + len(predictive)
        times = [d.time_index for d in runtime.decisions]
        assert times == sorted(times)

    def test_fallback_decisions_carry_a_plan(self):
        series = np.full(20, 600.0)
        runtime, _ = make_runtime(series)
        runtime.target_nodes()
        runtime.observe(600.0)
        runtime.target_nodes()
        decision = runtime.decisions[-1]
        assert decision.source == "reactive-fallback"
        assert decision.plan.nodes.tolist() == [10]
        assert decision.plan.strategy == "Reactive-Max"


class TestValidation:
    def test_rejects_negative_workload(self):
        runtime, _ = make_runtime(np.ones(20))
        with pytest.raises(ValueError):
            runtime.observe(-1.0)

    def test_rejects_bad_replan_cadence(self):
        with pytest.raises(ValueError):
            make_runtime(np.ones(20), replan=9)  # > horizon

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            AutoscalingRuntime(
                planner=None, context_length=0, horizon=4, threshold=60.0
            )

    def test_custom_fallback_used(self):
        series = np.full(20, 600.0)
        planner = OraclePlanner(series, 4, 60.0)
        runtime = AutoscalingRuntime(
            planner=planner, context_length=10, horizon=4, threshold=60.0,
            fallback=ReactiveAvgScaler(window=3),
        )
        runtime.observe(600.0)
        assert runtime.target_nodes() == 10


class QuantilePlanner:
    """Planner double stamping the forecast metadata a manager would."""

    name = "quantile-double"

    def __init__(self, horizon, threshold, center=300.0, spread=100.0):
        self.horizon = horizon
        self.threshold = threshold
        self.levels = np.array([0.1, 0.5, 0.9])
        self.values = np.vstack(
            [
                np.full(horizon, center - spread),
                np.full(horizon, center),
                np.full(horizon, center + spread),
            ]
        )

    def plan(self, context, start_index=0):
        plan = ScalingPlan(
            nodes=required_nodes(self.values[-1], self.threshold),
            threshold=self.threshold,
            strategy="quantile-double",
            quantile_levels=np.full(self.horizon, 0.9),
        )
        plan.metadata["forecast_levels"] = self.levels
        plan.metadata["forecast_values"] = self.values
        plan.metadata["bound_workload"] = self.values[-1]
        plan.metadata["uncertainty"] = self.values[-1] - self.values[0]
        plan.metadata["ramp_clipped_steps"] = 1
        plan.metadata["model"] = "DoubleForecaster"
        plan.metadata["policy"] = "fixed-0.9"
        return plan


class TestProvenance:
    def test_records_kept_for_every_decision(self):
        series = np.full(20, 300.0)
        runtime, planner = make_runtime(series, context=6, horizon=4)
        runtime.record_provenance = True
        runtime.run(series)
        fallback = [r for r in runtime.provenance if r["source"] == "reactive-fallback"]
        predictive = [r for r in runtime.provenance if r["source"] == "predictive"]
        # One fallback record per warm-up interval, one predictive record
        # per plan: every planning decision is accounted for.
        assert len(fallback) == 6
        predictive_decisions = [
            d for d in runtime.decisions if d.source == "predictive"
        ]
        assert len(predictive) == len(planner.calls) == len(predictive_decisions)
        assert len(runtime.provenance) == len(fallback) + len(predictive)

    def test_predictive_record_fields(self):
        series = np.full(20, 300.0)
        planner = QuantilePlanner(horizon=4, threshold=60.0)
        runtime = AutoscalingRuntime(
            planner=planner, context_length=6, horizon=4, threshold=60.0,
            record_provenance=True,
        )
        runtime.run(series)
        record = next(r for r in runtime.provenance if r["source"] == "predictive")
        assert record["strategy"] == "quantile-double"
        assert record["tau_min"] == record["tau_max"] == 0.9
        assert record["bound_max"] == 400.0
        assert record["bound_total"] == 1600.0
        assert record["uncertainty_mean"] == 200.0
        assert record["ramp_clipped_steps"] == 1
        assert record["model"] == "DoubleForecaster"
        assert record["policy"] == "fixed-0.9"
        assert record["nodes_first"] == record["nodes"][0]

    def test_fallback_record_fields(self):
        series = np.full(20, 600.0)
        runtime, _ = make_runtime(series)
        runtime.record_provenance = True
        runtime.target_nodes()
        runtime.observe(600.0)
        runtime.target_nodes()
        record = runtime.provenance[-1]
        assert record["source"] == "reactive-fallback"
        assert record["window_statistic"] == 600.0
        assert record["nodes_first"] == 10

    def test_records_flow_to_sinks_without_record_provenance(self):
        from repro.obs import InMemorySink, MetricsRegistry, using_registry

        series = np.full(20, 300.0)
        sink = InMemorySink()
        with using_registry(MetricsRegistry(sinks=[sink])):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            runtime.run(series)
        events = [r for r in sink.records if r.get("kind") == "provenance"]
        assert events
        assert all(e["name"] == "runtime.decision" for e in events)
        assert runtime.provenance == []  # not kept unless asked

    def test_zero_cost_when_nobody_listens(self, monkeypatch):
        # The zero-cost contract: with no sinks, no monitor, and
        # record_provenance off, the hot path must never even *build* a
        # provenance record.  Make record construction explode to prove it.
        from repro.core import runtime as runtime_module
        from repro.obs import MetricsRegistry, using_registry

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("provenance record built with nobody listening")

        monkeypatch.setattr(runtime_module, "_decision_record", boom)
        monkeypatch.setattr(runtime_module, "_fallback_record", boom)
        series = np.full(20, 300.0)
        with using_registry(MetricsRegistry()):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            allocations = runtime.run(series)
        assert len(allocations) == len(series)


class TestMonitorFeed:
    def test_monitor_receives_per_step_quantiles(self):
        from repro.obs import ModelHealthMonitor

        series = np.full(20, 300.0)
        planner = QuantilePlanner(horizon=4, threshold=60.0, center=300.0)
        monitor = ModelHealthMonitor(window=4, detectors=[])
        runtime = AutoscalingRuntime(
            planner=planner, context_length=6, horizon=4, threshold=60.0,
            monitor=monitor,
        )
        runtime.run(series)
        # The first plan lands at t=6; 14 covered intervals follow.
        assert monitor.steps_observed == 14
        window = monitor.windows[0]
        assert window.start_index == 6
        # Constant actual 300 vs q0.9=400 / q0.1=200: upper always covers,
        # lower never does, and allocations never violate the threshold.
        assert window.coverage["0.9"] == 1.0
        assert window.coverage["0.1"] == 0.0
        assert window.violation_rate == 0.0

    def test_monitor_skipped_for_plans_without_forecast_metadata(self):
        from repro.obs import ModelHealthMonitor

        series = np.full(20, 300.0)
        monitor = ModelHealthMonitor(window=4, detectors=[])
        runtime, _ = make_runtime(series, context=6, horizon=4)
        runtime.monitor = monitor
        runtime.run(series)  # OraclePlanner stamps no forecast arrays
        assert monitor.steps_observed == 0


class TestTelemetry:
    def test_runtime_emits_counters_spans_and_gauge(self):
        from repro.obs import InMemorySink, MetricsRegistry, using_registry

        series = np.full(20, 300.0)
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        with using_registry(registry):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            allocations = runtime.run(series)
        assert len(allocations) == len(series)

        snap = registry.snapshot()
        assert snap["counters"]["runtime.observations"] == len(series)
        # Fallback serves the first `context` intervals, prediction after.
        assert snap["counters"]["runtime.fallback_activations"] == 6
        expected_plans = snap["counters"]["runtime.decisions{source=predictive}"]
        assert expected_plans >= 1
        assert snap["spans"]["runtime.step/plan/planner"]["count"] == expected_plans
        # Every step times all three phases.
        for phase in ("plan", "actuate", "observe"):
            assert snap["spans"][f"runtime.step/{phase}"]["count"] == len(series)
        assert snap["gauges"]["runtime.nodes_requested"] == allocations[-1]

        # The same facts flow to the sink as a replayable event stream.
        kinds = {r["kind"] for r in sink.records}
        assert {"counter", "gauge", "span"} <= kinds

    def test_no_telemetry_leaks_outside_scoped_registry(self):
        from repro.obs import MetricsRegistry, using_registry

        series = np.full(15, 300.0)
        scoped = MetricsRegistry()
        with using_registry(scoped):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            runtime.run(series)
        fresh = MetricsRegistry()
        with using_registry(fresh):
            pass
        assert fresh.snapshot()["counters"] == {}
        assert scoped.snapshot()["counters"]["runtime.observations"] == len(series)
