"""Tests for the closed-loop autoscaling runtime."""

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ReactiveAvgScaler, ScalingPlan
from repro.core.plan import required_nodes


class OraclePlanner:
    """Plans exactly the workload it will be asked to serve (test double)."""

    name = "oracle"

    def __init__(self, series, horizon, threshold):
        self.series = np.asarray(series, dtype=float)
        self.horizon = horizon
        self.threshold = threshold
        self.calls = []

    def plan(self, context, start_index=0):
        self.calls.append(start_index)
        future = self.series[start_index + len(context) :][: self.horizon]
        return ScalingPlan(
            nodes=required_nodes(future, self.threshold),
            threshold=self.threshold,
            strategy="oracle",
        )


def make_runtime(series, context=6, horizon=4, replan=None, threshold=60.0):
    planner = OraclePlanner(series, horizon, threshold)
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=context,
        horizon=horizon,
        threshold=threshold,
        replan_every=replan,
    )
    return runtime, planner


class TestColdStart:
    def test_first_interval_single_node(self):
        runtime, _ = make_runtime(np.full(20, 100.0))
        assert runtime.target_nodes() == 1

    def test_fallback_reacts_before_context_fills(self):
        series = np.full(20, 600.0)
        runtime, planner = make_runtime(series)
        allocations = []
        for value in series[:5]:
            allocations.append(runtime.target_nodes())
            runtime.observe(value)
        # After the first observation the fallback sees 600 -> 10 nodes.
        assert allocations[0] == 1
        assert allocations[1] == 10
        assert planner.calls == []  # predictive planning not yet possible


class TestPredictivePhase:
    def test_replans_on_schedule(self):
        series = np.full(30, 300.0)
        runtime, planner = make_runtime(series, context=6, horizon=4)
        runtime.run(series)
        # First plan at t=6, then every 4 steps: 6, 10, 14, ...
        assert planner.calls[0] == 0  # start_index of the context window
        diffs = np.diff([c for c in planner.calls])
        assert np.all(diffs == 4)

    def test_receding_horizon_mode(self):
        series = np.full(30, 300.0)
        runtime, planner = make_runtime(series, context=6, horizon=4, replan=1)
        runtime.run(series)
        diffs = np.diff([c for c in planner.calls])
        assert np.all(diffs == 1)

    def test_oracle_runtime_never_underprovisions_after_warmup(self):
        rng = np.random.default_rng(0)
        series = rng.uniform(100, 2000, size=60)
        runtime, _ = make_runtime(series, context=6, horizon=4)
        allocations = runtime.run(series)
        needed = required_nodes(series, 60.0)
        # After the context fills (first 6 steps + first plan boundary),
        # the oracle-backed runtime is exact.
        assert np.array_equal(allocations[6:], needed[6:])

    def test_decisions_logged(self):
        series = np.full(30, 300.0)
        runtime, _ = make_runtime(series)
        runtime.run(series)
        assert runtime.decisions
        assert all(d.source == "predictive" for d in runtime.decisions)
        times = [d.time_index for d in runtime.decisions]
        assert times == sorted(times)


class TestValidation:
    def test_rejects_negative_workload(self):
        runtime, _ = make_runtime(np.ones(20))
        with pytest.raises(ValueError):
            runtime.observe(-1.0)

    def test_rejects_bad_replan_cadence(self):
        with pytest.raises(ValueError):
            make_runtime(np.ones(20), replan=9)  # > horizon

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            AutoscalingRuntime(
                planner=None, context_length=0, horizon=4, threshold=60.0
            )

    def test_custom_fallback_used(self):
        series = np.full(20, 600.0)
        planner = OraclePlanner(series, 4, 60.0)
        runtime = AutoscalingRuntime(
            planner=planner, context_length=10, horizon=4, threshold=60.0,
            fallback=ReactiveAvgScaler(window=3),
        )
        runtime.observe(600.0)
        assert runtime.target_nodes() == 10


class TestTelemetry:
    def test_runtime_emits_counters_spans_and_gauge(self):
        from repro.obs import InMemorySink, MetricsRegistry, using_registry

        series = np.full(20, 300.0)
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        with using_registry(registry):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            allocations = runtime.run(series)
        assert len(allocations) == len(series)

        snap = registry.snapshot()
        assert snap["counters"]["runtime.observations"] == len(series)
        # Fallback serves the first `context` intervals, prediction after.
        assert snap["counters"]["runtime.fallback_activations"] == 6
        expected_plans = snap["counters"]["runtime.decisions{source=predictive}"]
        assert expected_plans >= 1
        assert snap["spans"]["runtime/plan"]["count"] == expected_plans
        assert snap["gauges"]["runtime.nodes_requested"] == allocations[-1]

        # The same facts flow to the sink as a replayable event stream.
        kinds = {r["kind"] for r in sink.records}
        assert {"counter", "gauge", "span"} <= kinds

    def test_no_telemetry_leaks_outside_scoped_registry(self):
        from repro.obs import MetricsRegistry, using_registry

        series = np.full(15, 300.0)
        scoped = MetricsRegistry()
        with using_registry(scoped):
            runtime, _ = make_runtime(series, context=6, horizon=4)
            runtime.run(series)
        fresh = MetricsRegistry()
        with using_registry(fresh):
            pass
        assert fresh.snapshot()["counters"] == {}
        assert scoped.snapshot()["counters"]["runtime.observations"] == len(series)
