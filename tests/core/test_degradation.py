"""Tests for runtime input sanitization and graceful degradation."""

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes


class SteadyPlanner:
    """Always plans a constant allocation (test double)."""

    name = "steady"

    def __init__(self, horizon, nodes=5):
        self.horizon = horizon
        self.nodes = nodes
        self.calls = 0

    def plan(self, context, start_index=0):
        self.calls += 1
        return ScalingPlan(
            nodes=np.full(self.horizon, self.nodes, dtype=np.int64),
            threshold=60.0,
            strategy="steady",
        )


class CrashingPlanner:
    """Raises on selected planning attempts (1-based call numbers)."""

    name = "crashing"

    def __init__(self, horizon, fail_calls=(), nodes=5):
        self.inner = SteadyPlanner(horizon, nodes)
        self.fail_calls = set(fail_calls)
        self.calls = 0

    def plan(self, context, start_index=0):
        self.calls += 1
        if self.calls in self.fail_calls or "all" in self.fail_calls:
            raise RuntimeError(f"boom on call {self.calls}")
        return self.inner.plan(context, start_index=start_index)


def make_runtime(planner, context=4, horizon=4, **kwargs):
    return AutoscalingRuntime(
        planner=planner,
        context_length=context,
        horizon=horizon,
        threshold=60.0,
        **kwargs,
    )


class TestInvalidObservations:
    """Satellite 1: ``NaN < 0`` is False — a sign check alone lets
    non-finite values poison the context silently."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_default_policy_raises_on_nonfinite(self, bad):
        runtime = make_runtime(SteadyPlanner(4))
        with pytest.raises(ValueError, match="finite non-negative"):
            runtime.observe(bad)

    def test_negative_still_rejected(self):
        runtime = make_runtime(SteadyPlanner(4))
        with pytest.raises(ValueError):
            runtime.observe(-1.0)

    def test_impute_substitutes_last_valid_value(self):
        runtime = make_runtime(SteadyPlanner(4), invalid_policy="impute")
        runtime.observe(100.0)
        runtime.observe(float("nan"))
        assert list(runtime._history) == [100.0, 100.0]
        assert runtime.invalid_observations == 1

    def test_impute_before_any_history_uses_zero(self):
        runtime = make_runtime(SteadyPlanner(4), invalid_policy="impute")
        runtime.observe(float("nan"))
        assert list(runtime._history) == [0.0]

    def test_reject_advances_clock_without_feeding_context(self):
        runtime = make_runtime(SteadyPlanner(4), invalid_policy="reject")
        runtime.observe(100.0)
        runtime.observe(float("inf"))
        assert list(runtime._history) == [100.0]
        assert runtime.time_index == 2  # the interval still happened
        assert runtime.invalid_observations == 1

    def test_context_never_contains_nonfinite(self):
        runtime = make_runtime(SteadyPlanner(4), invalid_policy="impute")
        for value in [100.0, float("nan"), float("inf"), -5.0, 200.0]:
            runtime.observe(value)
        history = np.asarray(runtime._history)
        assert np.isfinite(history).all()
        assert (history >= 0).all()

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            make_runtime(SteadyPlanner(4), invalid_policy="shrug")


class TestPlannerDegradation:
    def test_planner_crash_degrades_instead_of_raising(self):
        planner = CrashingPlanner(4, fail_calls={"all"})
        runtime = make_runtime(planner)
        series = np.full(12, 300.0)
        allocations = runtime.run(series)  # must not raise
        assert len(allocations) == len(series)
        degraded = [d for d in runtime.decisions if d.source == "degraded"]
        assert degraded
        # The fallback sees 300 -> ceil(300/60) = 5 nodes.
        assert degraded[0].plan.nodes.tolist() == [5] * runtime.replan_every

    def test_bounded_retry_then_degrade(self):
        planner = CrashingPlanner(4, fail_calls={"all"})
        runtime = make_runtime(planner, max_plan_retries=2)
        runtime.run(np.full(8, 300.0))
        # First decision: 1 attempt + 2 retries, all failing.
        assert runtime.planner_errors >= 3
        assert planner.calls >= 3

    def test_transient_crash_recovers_at_next_boundary(self):
        planner = CrashingPlanner(4, fail_calls={1, 2})  # first decision only
        runtime = make_runtime(planner)
        runtime.run(np.full(16, 300.0))
        sources = [d.source for d in runtime.decisions if d.source != "reactive-fallback"]
        assert sources[0] == "degraded"
        assert "predictive" in sources[1:]

    def test_raise_mode_propagates(self):
        planner = CrashingPlanner(4, fail_calls={"all"})
        runtime = make_runtime(planner, on_planner_error="raise")
        with pytest.raises(RuntimeError, match="boom"):
            runtime.run(np.full(8, 300.0))

    def test_degraded_plan_metadata_and_counters(self):
        planner = CrashingPlanner(4, fail_calls={"all"})
        runtime = make_runtime(planner)
        runtime.run(np.full(12, 300.0))
        degraded = [d for d in runtime.decisions if d.source == "degraded"]
        for decision in degraded:
            assert decision.plan.metadata["degraded"] is True
            assert decision.plan.metadata["error"] == "RuntimeError"
        # Every interval served off a degraded plan is counted.
        assert runtime.degraded_intervals == sum(
            len(d.plan.nodes) for d in degraded
        )

    def test_degraded_provenance_names_the_error(self):
        planner = CrashingPlanner(4, fail_calls={"all"})
        runtime = make_runtime(planner, record_provenance=True)
        runtime.run(np.full(8, 300.0))
        records = [r for r in runtime.provenance if r["source"] == "degraded"]
        assert records
        assert all(r["error"] == "RuntimeError" for r in records)

    def test_degradation_telemetry_counters(self):
        from repro.obs import MetricsRegistry, using_registry

        registry = MetricsRegistry()
        with using_registry(registry):
            planner = CrashingPlanner(4, fail_calls={"all"})
            runtime = make_runtime(planner, invalid_policy="impute")
            series = np.full(12, 300.0)
            series[5] = float("nan")
            runtime.run(series)
        counters = registry.snapshot()["counters"]
        assert counters["runtime.planner_errors{error=RuntimeError}"] >= 2
        assert counters["runtime.planner_retries"] >= 1
        assert counters["runtime.degraded_intervals"] == runtime.degraded_intervals
        assert counters["runtime.invalid_observations{reason=nan}"] == 1
        assert counters["runtime.decisions{source=degraded}"] == len(
            [d for d in runtime.decisions if d.source == "degraded"]
        )

    def test_rejects_bad_settings(self):
        with pytest.raises(ValueError):
            make_runtime(SteadyPlanner(4), on_planner_error="explode")
        with pytest.raises(ValueError):
            make_runtime(SteadyPlanner(4), max_plan_retries=-1)


class TestDegradedMonitorFeed:
    def test_degraded_intervals_reach_window_stats(self):
        from repro.obs import ModelHealthMonitor

        planner = CrashingPlanner(4, fail_calls={"all"})
        monitor = ModelHealthMonitor(window=4, detectors=[])
        runtime = make_runtime(planner, monitor=monitor)
        runtime.run(np.full(12, 300.0))
        assert monitor.windows
        window = monitor.windows[0]
        assert window.degraded_intervals == 4
        assert window.degraded_rate == 1.0
