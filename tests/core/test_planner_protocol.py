"""Every shipped planner satisfies the Planner API — checked structurally.

The contract (``repro.core.plan.Planner``) is a ``typing.Protocol``:
anything with a ``name`` string and a ``plan(context, start_index=0) ->
ScalingPlan`` method is a planner.  These tests exercise the contract
directly — call the methods, inspect the results — rather than relying
on ``isinstance``, so a planner that would break real callers cannot
sneak through on structural typing technicalities.
"""

import inspect

import numpy as np
import pytest

from repro.core import (
    FixedQuantilePolicy,
    Planner,
    PointForecastScaler,
    ReactiveAvgScaler,
    ReactiveMaxScaler,
    RobustPredictiveAutoscaler,
)
from repro.forecast import SeasonalNaiveForecaster
from repro.forecast.point import MedianPointAdapter

SEASON = 12
HORIZON = 6
THRESHOLD = 60.0


def _training_series() -> np.ndarray:
    rng = np.random.default_rng(0)
    t = np.arange(10 * SEASON)
    return 200.0 + 80.0 * np.sin(2 * np.pi * t / SEASON) + rng.normal(0, 5, len(t))


def shipped_planners() -> list:
    """One configured instance of every planner the package ships."""
    series = _training_series()
    naive = SeasonalNaiveForecaster(HORIZON, season=SEASON)
    robust = RobustPredictiveAutoscaler(
        naive, THRESHOLD, FixedQuantilePolicy(0.9)
    ).fit(series)
    point = PointForecastScaler(
        MedianPointAdapter(SeasonalNaiveForecaster(HORIZON, season=SEASON)).fit(series),
        THRESHOLD,
    )
    reactive_max = ReactiveMaxScaler(window=4, threshold=THRESHOLD, horizon=HORIZON)
    reactive_avg = ReactiveAvgScaler(window=4, threshold=THRESHOLD, horizon=HORIZON)
    return [robust, point, reactive_max, reactive_avg]


def planner_ids() -> list[str]:
    return [type(p).__name__ for p in shipped_planners()]


@pytest.fixture(params=range(len(planner_ids())), ids=planner_ids())
def planner(request):
    return shipped_planners()[request.param]


class TestStructuralConformance:
    """No isinstance: exercise exactly what a Planner caller relies on."""

    def test_has_string_name(self, planner):
        assert isinstance(planner.name, str) and planner.name

    def test_plan_signature_accepts_context_and_start_index(self, planner):
        signature = inspect.signature(planner.plan)
        assert "start_index" in signature.parameters
        assert signature.parameters["start_index"].default == 0

    def test_plan_returns_valid_scaling_plan(self, planner):
        context = _training_series()[-2 * SEASON :]
        plan = planner.plan(context, start_index=len(_training_series()) - 2 * SEASON)
        nodes = np.asarray(plan.nodes)
        assert nodes.ndim == 1 and len(nodes) >= 1
        assert np.issubdtype(nodes.dtype, np.integer)
        assert np.all(nodes >= 1)
        assert plan.strategy  # labelled for the audit log
        assert np.all(np.asarray(plan.threshold, dtype=float) > 0)

    def test_plan_is_deterministic_given_context(self, planner):
        context = _training_series()[-2 * SEASON :]
        first = planner.plan(context, start_index=0)
        second = planner.plan(context, start_index=0)
        np.testing.assert_array_equal(first.nodes, second.nodes)


class TestProtocolAgreement:
    """The runtime_checkable Protocol agrees with the structural facts."""

    def test_all_shipped_planners_match_protocol(self):
        for instance in shipped_planners():
            assert isinstance(instance, Planner), type(instance).__name__

    def test_protocol_rejects_planless_object(self):
        class NotAPlanner:
            name = "nope"

        assert not isinstance(NotAPlanner(), Planner)


class TestReactivePlannerConstruction:
    def test_plan_without_threshold_raises_helpfully(self):
        scaler = ReactiveMaxScaler(window=4)
        with pytest.raises(ValueError, match="threshold"):
            scaler.plan(np.full(8, 100.0))

    def test_reactive_plan_matches_window_statistic(self):
        scaler = ReactiveMaxScaler(window=3, threshold=60.0, horizon=4)
        plan = scaler.plan(np.array([50.0, 400.0, 100.0, 90.0]))
        # window max = 400 -> 7 nodes, held for the whole horizon
        np.testing.assert_array_equal(plan.nodes, [7, 7, 7, 7])
