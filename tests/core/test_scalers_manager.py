"""Tests for reactive scalers, the point-forecast scaler, the manager,
the end-to-end autoscaler, and the rolling evaluation harness."""

import numpy as np
import pytest

from repro.core import (
    FixedQuantilePolicy,
    PointForecastScaler,
    ReactiveAvgScaler,
    ReactiveMaxScaler,
    RobustAutoScalingManager,
    RobustPredictiveAutoscaler,
    UncertaintyAwarePolicy,
    decision_points,
    evaluate_strategy,
    required_nodes,
)
from repro.forecast import QuantileForecast, SeasonalNaiveForecaster


def step_workload():
    """Flat 100, then a jump to 600 — exposes reactive lag."""
    return np.concatenate([np.full(20, 100.0), np.full(20, 600.0)])


class TestReactiveScalers:
    def test_max_uses_window_maximum(self):
        scaler = ReactiveMaxScaler(window=3)
        w = np.array([60.0, 120.0, 60.0, 60.0, 60.0])
        plan = scaler.replay(w, threshold=60.0)
        # step 3 window = [120, 60, 60] -> max 120 -> 2 nodes
        assert plan.nodes[3] == 2

    def test_avg_decay_weights_newest_most(self):
        scaler = ReactiveAvgScaler(window=2, half_life=1.0)
        stat = scaler.window_statistic(np.array([100.0, 200.0]))
        # weights: old 0.5, new 1.0 -> (50+200)/1.5
        assert stat == pytest.approx((0.5 * 100 + 1.0 * 200) / 1.5)

    def test_lag_causes_under_provisioning_on_jump(self):
        w = step_workload()
        for scaler in (ReactiveMaxScaler(), ReactiveAvgScaler()):
            plan = scaler.replay(w, threshold=60.0)
            needed = required_nodes(w, 60.0)
            jump = 20
            assert plan.nodes[jump] < needed[jump], scaler.name

    def test_max_more_conservative_than_avg(self):
        rng = np.random.default_rng(0)
        w = rng.uniform(50, 1000, size=300)
        max_plan = ReactiveMaxScaler().replay(w, 60.0)
        avg_plan = ReactiveAvgScaler().replay(w, 60.0)
        assert max_plan.total_nodes > avg_plan.total_nodes

    def test_first_step_single_node(self):
        plan = ReactiveMaxScaler().replay(np.full(5, 600.0), 60.0)
        assert plan.nodes[0] == 1

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ReactiveMaxScaler(window=0)
        with pytest.raises(ValueError):
            ReactiveAvgScaler(half_life=0.0)


class _ConstantPoint:
    """Point forecaster stub returning a fixed series."""

    _fitted = True

    def __init__(self, value, horizon):
        self.value, self.horizon = value, horizon

    def fit(self, series):
        return self

    def predict_point(self, context, start_index=0):
        return np.full(self.horizon, self.value)

    def _require_fitted(self):
        pass


class TestPointForecastScaler:
    def test_allocates_to_forecast(self):
        scaler = PointForecastScaler(_ConstantPoint(120.0, 4), threshold=60.0)
        plan = scaler.plan(np.ones(8))
        np.testing.assert_array_equal(plan.nodes, [2, 2, 2, 2])

    def test_negative_forecast_clamped(self):
        scaler = PointForecastScaler(_ConstantPoint(-50.0, 3), threshold=60.0)
        plan = scaler.plan(np.ones(8))
        np.testing.assert_array_equal(plan.nodes, [1, 1, 1])

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PointForecastScaler(_ConstantPoint(1.0, 1), threshold=0.0)

    def test_metadata_records_forecast(self):
        scaler = PointForecastScaler(_ConstantPoint(120.0, 2), threshold=60.0)
        np.testing.assert_array_equal(
            scaler.plan(np.ones(4)).metadata["point_forecast"], [120.0, 120.0]
        )


def fan(levels, *rows):
    return QuantileForecast(levels=np.array(levels), values=np.array(rows, dtype=float))


class TestManager:
    def test_fixed_policy_plan(self):
        manager = RobustAutoScalingManager(threshold=60.0, policy=FixedQuantilePolicy(0.9))
        fc = fan([0.5, 0.9], [100.0, 200.0], [130.0, 250.0])
        plan = manager.plan(fc)
        np.testing.assert_array_equal(plan.nodes, [3, 5])
        np.testing.assert_array_equal(plan.quantile_levels, [0.9, 0.9])

    def test_default_policy_is_fixed_09(self):
        manager = RobustAutoScalingManager(threshold=60.0)
        assert manager.policy.name == "fixed-0.9"

    def test_negative_bound_clamped(self):
        manager = RobustAutoScalingManager(threshold=60.0, policy=FixedQuantilePolicy(0.5))
        fc = fan([0.5], [-10.0, 20.0])
        plan = manager.plan(fc)
        np.testing.assert_array_equal(plan.nodes, [1, 1])

    def test_ramp_limits_respected(self):
        manager = RobustAutoScalingManager(
            threshold=60.0,
            policy=FixedQuantilePolicy(0.5),
            max_scale_out=1,
            max_scale_in=1,
        )
        fc = fan([0.5], [60.0, 600.0, 60.0])
        plan = manager.plan(fc)
        assert np.abs(np.diff(plan.nodes)).max() <= 1

    def test_one_sided_scale_out_limit(self):
        # Only the out-rate is capped; scale-in may drop arbitrarily fast.
        manager = RobustAutoScalingManager(
            threshold=60.0, policy=FixedQuantilePolicy(0.5), max_scale_out=1
        )
        fc = fan([0.5], [60.0, 600.0, 60.0])
        plan = manager.plan(fc)
        diffs = np.diff(plan.nodes)
        assert diffs.max() <= 1
        assert np.all(plan.nodes >= required_nodes(fc.at(0.5), 60.0))

    def test_one_sided_scale_in_limit(self):
        # Only the in-rate is capped; the jump up happens in one step.
        manager = RobustAutoScalingManager(
            threshold=60.0, policy=FixedQuantilePolicy(0.5), max_scale_in=1
        )
        fc = fan([0.5], [60.0, 600.0, 60.0, 60.0])
        plan = manager.plan(fc)
        diffs = np.diff(plan.nodes)
        assert diffs.min() >= -1
        assert plan.nodes[1] == 10  # unconstrained scale-out
        assert np.all(plan.nodes >= required_nodes(fc.at(0.5), 60.0))

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            RobustAutoScalingManager(threshold=-1.0)

    def test_higher_quantile_never_fewer_nodes(self):
        fc = fan([0.5, 0.8, 0.95], [100.0, 200.0], [140.0, 260.0], [180.0, 320.0])
        totals = []
        for tau in (0.5, 0.8, 0.95):
            manager = RobustAutoScalingManager(60.0, FixedQuantilePolicy(tau))
            totals.append(manager.plan(fc).total_nodes)
        assert totals == sorted(totals)


class TestAutoscalerEndToEnd:
    SEASON = 24

    def make_series(self):
        rng = np.random.default_rng(5)
        t = np.arange(self.SEASON * 30)
        return 600.0 + 300.0 * np.sin(2 * np.pi * t / self.SEASON) + rng.normal(
            0, 20.0, size=len(t)
        )

    def make_autoscaler(self, policy):
        forecaster = SeasonalNaiveForecaster(horizon=self.SEASON, season=self.SEASON)
        return RobustPredictiveAutoscaler(
            forecaster,
            threshold=60.0,
            policy=policy,
            quantile_levels=(0.1, 0.3, 0.5, 0.7, 0.9),
        )

    def test_fit_plan_cycle(self):
        series = self.make_series()
        scaler = self.make_autoscaler(FixedQuantilePolicy(0.9)).fit(series[:-100])
        plan = scaler.plan(series[-100 - self.SEASON : -100])
        assert plan.horizon == self.SEASON
        assert plan.strategy == "fixed-0.9"

    def test_higher_quantile_reduces_underprovisioning(self):
        series = self.make_series()
        train, test = series[: -self.SEASON * 8], series[-self.SEASON * 8 :]
        rates = {}
        for tau in (0.5, 0.9):
            scaler = self.make_autoscaler(FixedQuantilePolicy(tau)).fit(train)
            ev = evaluate_strategy(
                scaler, test, self.SEASON, self.SEASON, 60.0,
                series_start_index=len(train),
            )
            rates[tau] = ev.report.under_provisioning_rate
        assert rates[0.9] < rates[0.5]

    def test_adaptive_between_fixed_extremes(self):
        series = self.make_series()
        train, test = series[: -self.SEASON * 8], series[-self.SEASON * 8 :]
        results = {}
        for name, policy in [
            ("low", FixedQuantilePolicy(0.5)),
            ("high", FixedQuantilePolicy(0.9)),
        ]:
            scaler = self.make_autoscaler(policy).fit(train)
            ev = evaluate_strategy(
                scaler, test, self.SEASON, self.SEASON, 60.0,
                series_start_index=len(train),
            )
            results[name] = ev.report
        scaler = self.make_autoscaler(
            UncertaintyAwarePolicy(0.5, 0.9, uncertainty_threshold=1.0)
        ).fit(train)
        adaptive = evaluate_strategy(
            scaler, test, self.SEASON, self.SEASON, 60.0, series_start_index=len(train)
        ).report
        assert (
            results["high"].over_provisioning_rate + 1e-9
            >= adaptive.over_provisioning_rate
            >= results["low"].over_provisioning_rate - 1e-9
        )

    def test_name_describes_pipeline(self):
        scaler = self.make_autoscaler(FixedQuantilePolicy(0.8))
        assert scaler.name == "SeasonalNaiveForecaster/fixed-0.8"


class TestEvaluationHarness:
    def test_decision_points_spacing(self):
        points = decision_points(num_steps=100, context_length=20, horizon=10)
        assert points[0] == 20
        assert all(b - a == 10 for a, b in zip(points, points[1:]))
        assert points[-1] + 10 <= 100

    def test_decision_points_custom_stride(self):
        points = decision_points(100, 20, 10, stride=5)
        assert points[1] - points[0] == 5

    def test_too_short_series_raises(self):
        with pytest.raises(ValueError):
            decision_points(25, 20, 10)

    def test_reactive_and_predictive_same_span(self):
        """Both kinds of strategy must be scored on identical steps."""
        rng = np.random.default_rng(8)
        values = rng.uniform(100, 1000, size=200)

        class PerfectPlanner:
            name = "oracle"

            def plan(self, context, start_index=0):
                from repro.core import solve_closed_form

                actual = values[start_index + len(context):][:10]
                return solve_closed_form(actual, 60.0, strategy="oracle")

        predictive = evaluate_strategy(PerfectPlanner(), values, 20, 10, 60.0)
        reactive = evaluate_strategy(ReactiveMaxScaler(), values, 20, 10, 60.0)
        assert len(predictive.actual) == len(reactive.actual)
        np.testing.assert_array_equal(predictive.actual, reactive.actual)
        # the oracle is perfect
        assert predictive.report.under_provisioning_rate == 0.0
        assert predictive.report.over_provisioning_rate == 0.0

    def test_wrong_horizon_plan_rejected(self):
        class BadPlanner:
            name = "bad"

            def plan(self, context, start_index=0):
                from repro.core import ScalingPlan

                return ScalingPlan(nodes=np.ones(3, dtype=int), threshold=60.0)

        with pytest.raises(ValueError):
            evaluate_strategy(BadPlanner(), np.ones(100), 20, 10, 60.0)

    def test_on_window_callback_fires_per_decision(self):
        calls = []

        class OnePlanner:
            name = "ones"

            def plan(self, context, start_index=0):
                from repro.core import ScalingPlan

                return ScalingPlan(nodes=np.ones(10, dtype=int), threshold=60.0)

        evaluate_strategy(
            OnePlanner(), np.ones(100), 20, 10, 60.0,
            on_window=lambda p, plan, actual: calls.append(p),
        )
        assert calls == decision_points(100, 20, 10)

    def test_window_reports_match_combined(self):
        class OnePlanner:
            name = "ones"

            def plan(self, context, start_index=0):
                from repro.core import ScalingPlan

                return ScalingPlan(nodes=np.ones(10, dtype=int), threshold=60.0)

        rng = np.random.default_rng(9)
        values = rng.uniform(10, 300, size=100)
        ev = evaluate_strategy(OnePlanner(), values, 20, 10, 60.0)
        combined_under = np.mean(
            [r.under_provisioning_rate for r in ev.window_reports]
        )
        assert ev.report.under_provisioning_rate == pytest.approx(combined_under)
