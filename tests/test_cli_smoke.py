"""End-to-end CLI smoke tests: --telemetry capture and the report command."""

import json

import pytest

from repro.cli import main

EVALUATE_ARGS = [
    "evaluate", "--trace", "alibaba", "--days", "5", "--model", "naive",
    "--context", "144", "--horizon", "36", "--quantile", "0.9",
]


def read_events(path):
    return [json.loads(line) for line in path.read_text().splitlines() if line.strip()]


class TestEvaluateWithTelemetry:
    def test_closed_loop_run_streams_events(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.jsonl"
        code = main(EVALUATE_ARGS + ["--telemetry", str(telemetry)])
        assert code == 0
        out = capsys.readouterr().out
        assert "under-provisioning" in out
        assert "planning decisions" in out
        assert "QoS violations" in out

        records = read_events(telemetry)
        assert records
        kinds = {r["kind"] for r in records}
        assert {"counter", "gauge", "span"} <= kinds
        names = {r["name"] for r in records}
        # Closed loop: runtime decisions and fallback, simulator replay.
        assert "runtime.decisions" in names
        assert "runtime.fallback_activations" in names
        assert "runtime.nodes_requested" in names
        assert "simulator.intervals" in names
        assert "runtime.step/plan/planner" in names  # span path
        assert all("ts" in r for r in records)

    def test_no_telemetry_flag_writes_nothing(self, tmp_path, capsys):
        code = main(EVALUATE_ARGS)
        assert code == 0
        assert list(tmp_path.iterdir()) == []


class TestReport:
    def test_report_summarises_an_evaluate_run(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.jsonl"
        assert main(EVALUATE_ARGS + ["--telemetry", str(telemetry)]) == 0
        capsys.readouterr()

        code = main(["report", str(telemetry)])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry summary" in out
        assert "phase timings (spans)" in out
        assert "runtime.step/plan/planner" in out
        assert "runtime.fallback_activations" in out
        assert "simulator.intervals" in out
        assert "gauges (last value)" in out

    def test_report_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["report", str(empty)]) == 1

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read telemetry file" in capsys.readouterr().err

    def test_unwritable_telemetry_path_fails_cleanly(self, tmp_path, capsys):
        code = main(
            EVALUATE_ARGS + ["--telemetry", str(tmp_path / "no-dir" / "out.jsonl")]
        )
        assert code == 2
        assert "cannot open telemetry file" in capsys.readouterr().err

    def test_report_skips_malformed_lines(self, tmp_path, capsys):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            "garbage\n"
            '{"kind": "counter", "name": "c", "labels": {}, "value": 2}\n'
        )
        assert main(["report", str(path)]) == 0
        assert "c" in capsys.readouterr().out

    def test_report_all_garbage_file_fails_with_hint(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\nstill not json\n")
        assert main(["report", str(path)]) == 1
        err = capsys.readouterr().err
        assert "no telemetry records" in err
        assert "interrupted" in err  # hints at a partially-written stream

    def test_report_directory_path_fails_cleanly(self, tmp_path, capsys):
        assert main(["report", str(tmp_path)]) == 2
        assert "cannot read telemetry file" in capsys.readouterr().err

    def test_report_binary_file_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "binary.jsonl"
        path.write_bytes(b"\xff\xfe\x00\x01binary junk")
        assert main(["report", str(path)]) == 2
        assert "not a text file" in capsys.readouterr().err

    def test_report_notes_unknown_record_kinds(self, tmp_path, capsys):
        """Records from a newer writer are counted, not silently dropped."""
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"kind": "counter", "name": "c", "labels": {}, "value": 1}\n'
            '{"kind": "flamegraph", "name": "f"}\n'
            '{"kind": "flamegraph", "name": "g"}\n'
        )
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "skipped records of unknown kind" in out
        assert "flamegraph x2" in out
        assert "newer version" in out


class TestReportTraces:
    def trace_record(self, trace_id):
        return {
            "kind": "trace",
            "trace_id": trace_id,
            "status": "ok",
            "duration_s": 0.02,
            "spans": [
                {"span_id": "1", "parent_id": None, "name": "runtime.step",
                 "start_s": 0.0, "duration_s": 0.02, "status": "ok"},
                {"span_id": "2", "parent_id": "1", "name": "runtime.step/plan",
                 "start_s": 0.0, "duration_s": 0.015, "status": "ok"},
            ],
        }

    def test_renders_last_n_timelines(self, tmp_path, capsys):
        path = tmp_path / "traced.jsonl"
        path.write_text(
            "".join(json.dumps(self.trace_record(t)) + "\n" for t in range(5))
        )
        assert main(["report", str(path), "--traces", "2"]) == 0
        out = capsys.readouterr().out
        assert "trace 3 [ok]" in out
        assert "trace 4 [ok]" in out
        assert "trace 2 [ok]" not in out  # only the last N render
        assert "runtime.step/plan" in out
        assert "|" in out  # timeline bars, not raw dicts

    def test_no_trace_records_prints_friendly_notice(self, tmp_path, capsys):
        path = tmp_path / "plain.jsonl"
        path.write_text(
            '{"kind": "counter", "name": "c", "labels": {}, "value": 1}\n'
        )
        assert main(["report", str(path), "--traces", "3"]) == 0
        out = capsys.readouterr().out
        assert "no trace records in this telemetry file" in out

    def test_traces_flag_off_by_default(self, tmp_path, capsys):
        path = tmp_path / "traced.jsonl"
        path.write_text(json.dumps(self.trace_record(9)) + "\n")
        assert main(["report", str(path)]) == 0
        assert "trace 9" not in capsys.readouterr().out


class TestMonitorFlags:
    def test_bad_inject_shift_spec_exits_cleanly(self):
        with pytest.raises(SystemExit, match="START:MAGNITUDE"):
            main(EVALUATE_ARGS + ["--inject-shift", "banana"])

    def test_bad_alert_rule_exits_cleanly(self):
        with pytest.raises(SystemExit, match="cannot parse alert rule"):
            main(EVALUATE_ARGS + ["--monitor", "--alert", "coverage ~ 0.5"])


class TestCompareWithTelemetry:
    def test_compare_streams_evaluation_counters(self, tmp_path, capsys):
        telemetry = tmp_path / "telemetry.jsonl"
        code = main(
            [
                "compare", "--trace", "google", "--days", "6", "--epochs", "1",
                "--context", "96", "--horizon", "24",
                "--telemetry", str(telemetry),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "strategy" in out
        names = {r["name"] for r in read_events(telemetry)}
        assert "evaluation.windows" in names
        assert any(name.startswith("evaluate") for name in names)  # spans
