"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Tensor


def numerical_gradient(
    fn: Callable[[Tensor], Tensor], value: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar-valued ``fn`` at ``value``."""
    value = np.asarray(value, dtype=np.float64)
    grad = np.zeros_like(value)
    flat = value.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        upper = float(fn(Tensor(value)).data)
        flat[i] = original - eps
        lower = float(fn(Tensor(value)).data)
        flat[i] = original
        grad_flat[i] = (upper - lower) / (2.0 * eps)
    return grad


def assert_grad_matches(
    fn: Callable[[Tensor], Tensor],
    value: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-7,
) -> None:
    """Check reverse-mode gradient of scalar ``fn`` against finite differences."""
    value = np.asarray(value, dtype=np.float64)
    x = Tensor(value.copy(), requires_grad=True)
    out = fn(x)
    assert out.size == 1, "gradcheck requires a scalar output"
    out.backward()
    expected = numerical_gradient(fn, value)
    np.testing.assert_allclose(x.grad, expected, rtol=rtol, atol=atol)
