"""Tests for the LSTM and attention layers."""

import numpy as np
import pytest

from repro.nn import (
    LSTM,
    InterpretableMultiHeadAttention,
    LSTMCell,
    Tensor,
    causal_mask,
    scaled_dot_product_attention,
)


def rng():
    return np.random.default_rng(23)


class TestLSTMCell:
    def test_step_shapes(self):
        cell = LSTMCell(3, 5, rng())
        h, c = cell.initial_state(batch_size=2)
        h2, c2 = cell(Tensor(np.ones((2, 3))), (h, c))
        assert h2.shape == (2, 5)
        assert c2.shape == (2, 5)

    def test_hidden_bounded_by_tanh(self):
        cell = LSTMCell(2, 4, rng())
        h, c = cell.initial_state(1)
        for _ in range(50):
            h, c = cell(Tensor(np.full((1, 2), 10.0)), (h, c))
        assert np.all(np.abs(h.data) <= 1.0)

    def test_forget_bias_initialised_to_one(self):
        cell = LSTMCell(2, 4, rng())
        np.testing.assert_array_equal(cell.bias.data[4:8], np.ones(4))
        np.testing.assert_array_equal(cell.bias.data[:4], np.zeros(4))

    def test_gradients_through_time(self):
        cell = LSTMCell(1, 3, rng())
        h, c = cell.initial_state(1)
        x = Tensor(np.ones((1, 1)), requires_grad=True)
        for _ in range(5):
            h, c = cell(x, (h, c))
        h.sum().backward()
        assert x.grad is not None
        assert np.all(np.isfinite(x.grad))

    def test_state_changes_with_input(self):
        cell = LSTMCell(1, 3, rng())
        state = cell.initial_state(1)
        h_a, _ = cell(Tensor(np.array([[1.0]])), state)
        h_b, _ = cell(Tensor(np.array([[-1.0]])), state)
        assert not np.allclose(h_a.data, h_b.data)


class TestLSTM:
    def test_sequence_shapes(self):
        lstm = LSTM(input_size=2, hidden_size=4, rng=rng(), num_layers=2)
        out, state = lstm(Tensor(np.ones((3, 7, 2))))
        assert out.shape == (3, 7, 4)
        assert len(state) == 2
        assert state[0][0].shape == (3, 4)

    def test_state_carryover_matches_full_run(self):
        lstm = LSTM(1, 3, rng())
        series = np.random.default_rng(4).normal(size=(1, 6, 1))
        full, _ = lstm(Tensor(series))
        first, state = lstm(Tensor(series[:, :3]))
        second, _ = lstm(Tensor(series[:, 3:]), state)
        np.testing.assert_allclose(second.data, full.data[:, 3:], rtol=1e-10)

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            LSTM(1, 2, rng(), num_layers=0)

    def test_all_parameters_receive_grads(self):
        lstm = LSTM(2, 3, rng(), num_layers=2)
        out, _ = lstm(Tensor(np.random.default_rng(8).normal(size=(2, 4, 2))))
        out.sum().backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, f"no grad for {name}"


class TestAttention:
    def test_output_shape_and_weight_rows(self):
        q = Tensor(np.random.default_rng(1).normal(size=(2, 3, 4)))
        kv = Tensor(np.random.default_rng(2).normal(size=(2, 5, 4)))
        out, weights = scaled_dot_product_attention(q, kv, kv)
        assert out.shape == (2, 3, 4)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 3)))

    def test_uniform_scores_average_values(self):
        q = Tensor(np.zeros((1, 1, 2)))
        k = Tensor(np.zeros((1, 4, 2)))
        v = Tensor(np.arange(8, dtype=float).reshape(1, 4, 2))
        out, _ = scaled_dot_product_attention(q, k, v)
        np.testing.assert_allclose(out.data[0, 0], v.data[0].mean(axis=0))

    def test_causal_mask_blocks_future(self):
        mask = causal_mask(query_len=3, key_len=3)
        assert mask[0, 1] < -1e8
        assert mask[2, 2] == 0.0
        q = Tensor(np.random.default_rng(3).normal(size=(1, 3, 2)))
        _, weights = scaled_dot_product_attention(q, q, q, mask=mask)
        assert weights.data[0, 0, 1] < 1e-9
        assert weights.data[0, 0, 2] < 1e-9

    def test_causal_mask_decoder_sees_encoder(self):
        mask = causal_mask(query_len=2, key_len=5)
        # first decoder step may see encoder (3 steps) + itself
        np.testing.assert_array_equal(mask[0, :4], np.zeros(4))
        assert mask[0, 4] < -1e8

    def test_multihead_shapes(self):
        attn = InterpretableMultiHeadAttention(d_model=8, num_heads=2, rng=rng())
        x = Tensor(np.random.default_rng(6).normal(size=(2, 5, 8)))
        out, weights = attn(x, x, x)
        assert out.shape == (2, 5, 8)
        assert weights.shape == (2, 5, 5)
        np.testing.assert_allclose(weights.data.sum(axis=-1), np.ones((2, 5)), rtol=1e-8)

    def test_multihead_rejects_indivisible_heads(self):
        with pytest.raises(ValueError):
            InterpretableMultiHeadAttention(d_model=7, num_heads=2, rng=rng())

    def test_multihead_gradients(self):
        attn = InterpretableMultiHeadAttention(d_model=4, num_heads=2, rng=rng())
        x = Tensor(np.random.default_rng(9).normal(size=(1, 3, 4)))
        out, _ = attn(x, x, x)
        out.sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
