"""Unit tests for the autograd Tensor: every op gradient-checked."""

import numpy as np
import pytest

from repro.nn import Tensor, is_grad_enabled, no_grad

from tests.helpers import assert_grad_matches

RNG = np.random.default_rng(7)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_array_equal(out.data, [4.0, 6.0])

    def test_add_grad(self):
        assert_grad_matches(lambda x: (x + x + 3.0).sum(), RNG.normal(size=(3, 4)))

    def test_add_broadcast_grad(self):
        bias = Tensor(RNG.normal(size=4), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_radd_scalar(self):
        out = 2.0 + Tensor([1.0])
        assert out.data[0] == 3.0

    def test_sub_grad(self):
        assert_grad_matches(lambda x: (x - 2.0 * x).sum(), RNG.normal(size=5))

    def test_rsub(self):
        out = 5.0 - Tensor([2.0])
        assert out.data[0] == 3.0

    def test_mul_grad(self):
        y = RNG.normal(size=(2, 3))
        assert_grad_matches(lambda x: (x * y).sum(), RNG.normal(size=(2, 3)))

    def test_div_grad(self):
        assert_grad_matches(
            lambda x: (x / 3.0 + 1.0 / x).sum(), RNG.uniform(0.5, 2.0, size=(4,))
        )

    def test_div_denominator_grad(self):
        denom = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (Tensor([8.0, 8.0]) / denom).sum().backward()
        np.testing.assert_allclose(denom.grad, [-2.0, -0.5])

    def test_pow_grad(self):
        assert_grad_matches(lambda x: (x**3).sum(), RNG.normal(size=4))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        assert_grad_matches(lambda x: (-x).sum(), RNG.normal(size=3))


class TestMatmul:
    def test_matmul_values(self):
        a = np.arange(6, dtype=float).reshape(2, 3)
        b = np.arange(12, dtype=float).reshape(3, 4)
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_array_equal(out.data, a @ b)

    def test_matmul_grad_left(self):
        b = RNG.normal(size=(3, 4))
        assert_grad_matches(lambda x: (x @ b).sum(), RNG.normal(size=(2, 3)))

    def test_matmul_grad_right(self):
        a = Tensor(RNG.normal(size=(2, 3)))
        b = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (a @ b).sum().backward()
        expected = a.data.T @ np.ones((2, 4))
        np.testing.assert_allclose(b.grad, expected)

    def test_batched_matmul_grad(self):
        b = RNG.normal(size=(2, 4, 5))
        assert_grad_matches(lambda x: (x @ b).sum(), RNG.normal(size=(2, 3, 4)))

    def test_matrix_vector_grad(self):
        v = RNG.normal(size=3)
        assert_grad_matches(lambda x: (x @ v).sum(), RNG.normal(size=(2, 3)))


class TestNonlinearities:
    @pytest.mark.parametrize(
        "name",
        ["exp", "log", "sqrt", "tanh", "sigmoid", "relu", "softplus", "abs"],
    )
    def test_elementwise_grad(self, name):
        domain = RNG.uniform(0.2, 2.0, size=(3, 3))  # positive: safe for log/sqrt
        assert_grad_matches(lambda x: getattr(x, name)().sum(), domain)

    def test_sigmoid_extreme_values_stable(self):
        out = Tensor([-1000.0, 1000.0]).sigmoid()
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data, [0.0, 1.0], atol=1e-12)

    def test_softplus_large_input(self):
        out = Tensor([800.0]).softplus()
        np.testing.assert_allclose(out.data, [800.0])

    def test_clip_grad_masks_saturated(self):
        x = Tensor(np.array([-2.0, 0.0, 2.0]), requires_grad=True)
        x.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_maximum_grad_routing(self):
        a = Tensor(np.array([1.0, 5.0]), requires_grad=True)
        b = Tensor(np.array([3.0, 2.0]), requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 0.0])


class TestReductions:
    def test_sum_axis_grad(self):
        assert_grad_matches(lambda x: x.sum(axis=0).sum(), RNG.normal(size=(3, 4)))

    def test_sum_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_sum_negative_axis_grad(self):
        assert_grad_matches(lambda x: (x.sum(axis=-1) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_mean_value(self):
        assert Tensor([2.0, 4.0]).mean().item() == 3.0

    def test_mean_grad(self):
        assert_grad_matches(lambda x: x.mean(), RNG.normal(size=(4, 5)))

    def test_max_grad_unique(self):
        x = Tensor(np.array([1.0, 7.0, 3.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_array_equal(x.grad, [0.0, 1.0, 0.0])

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([5.0, 5.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_max_axis(self):
        x = Tensor(np.array([[1.0, 2.0], [3.0, 0.0]]))
        np.testing.assert_array_equal(x.max(axis=1).data, [2.0, 3.0])

    def test_var_matches_numpy(self):
        data = RNG.normal(size=20)
        np.testing.assert_allclose(Tensor(data).var().item(), data.var(), rtol=1e-12)


class TestShapes:
    def test_reshape_grad(self):
        assert_grad_matches(lambda x: (x.reshape(6) ** 2).sum(), RNG.normal(size=(2, 3)))

    def test_transpose_grad(self):
        y = RNG.normal(size=(4, 3))
        assert_grad_matches(lambda x: (x.transpose() * y).sum(), RNG.normal(size=(3, 4)))

    def test_swapaxes(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)))
        assert x.swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_array_equal(x.grad, expected)

    def test_getitem_integer_array_accumulates(self):
        x = Tensor(np.zeros(3), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0.0, 1.0])

    def test_concat_grad(self):
        a = Tensor(RNG.normal(size=(2, 2)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3, 2)), requires_grad=True)
        Tensor.concat([a, b], axis=0).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))
        np.testing.assert_array_equal(b.grad, np.ones((3, 2)))

    def test_stack_grad(self):
        parts = [Tensor(RNG.normal(size=3), requires_grad=True) for _ in range(4)]
        Tensor.stack(parts, axis=0).sum().backward()
        for part in parts:
            np.testing.assert_array_equal(part.grad, np.ones(3))


class TestComposite:
    def test_softmax_rows_sum_to_one(self):
        out = Tensor(RNG.normal(size=(5, 7))).softmax(axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5))

    def test_softmax_grad(self):
        w = RNG.normal(size=(2, 3))
        assert_grad_matches(
            lambda x: (x.softmax(axis=-1) * w).sum(), RNG.normal(size=(2, 3))
        )

    def test_log_softmax_consistency(self):
        x = Tensor(RNG.normal(size=(3, 4)))
        np.testing.assert_allclose(
            x.log_softmax().data, np.log(x.softmax().data), rtol=1e-10
        )


class TestAutogradMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_twice_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        x2 = Tensor(np.array([1.0]), requires_grad=True)
        assert x.grad[0] == 2.0
        del x2

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_constant_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_blocks_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2.0
        assert is_grad_enabled()
        assert not y.requires_grad

    def test_detach_cuts_tape(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph_grad(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        a = x * 2.0
        b = x + 1.0
        (a * b).backward()  # d/dx [2x(x+1)] = 4x + 2
        np.testing.assert_allclose(x.grad, [14.0])

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_item_and_numpy(self):
        t = Tensor([[5.0]])
        assert t.item() == 5.0
        assert t.numpy() is t.data

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
