"""Bitwise parity for the TFT's tape-free inference kernels.

The fast path promises *bitwise* float64 identity with the autograd
tape — including the stored attention pattern, which downstream
interpretability tooling reads — so every fused kernel (softmax,
LayerNorm, GLU, GRN, interpretable attention) and the whole-network
``_TFTNetwork.fast_forward`` are checked with ``np.array_equal``, not
``allclose``.  float32 is the explicit speed/accuracy trade and is
gated statistically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import TFTForecaster, TrainingConfig
from repro.nn import (
    GatedLinearUnit,
    GatedResidualNetwork,
    InterpretableMultiHeadAttention,
    LayerNorm,
    Tensor,
    causal_mask,
    fastpath,
    no_grad,
)
from repro.nn.attention import _MASK_CACHE

RNG = np.random.default_rng


def _tape(module, *tensors, **kwargs):
    with no_grad(), fastpath.use_fast_path(False):
        return module(*tensors, **kwargs)


# ---------------------------------------------------------------------------
# causal_mask: vectorized construction + per-shape cache
# ---------------------------------------------------------------------------
class TestCausalMask:
    def test_matches_explicit_construction(self):
        for query_len, key_len in [(1, 1), (3, 3), (4, 9), (1, 7)]:
            mask = causal_mask(query_len=query_len, key_len=key_len)
            offset = key_len - query_len
            expected = np.zeros((query_len, key_len))
            for i in range(query_len):
                for j in range(key_len):
                    if j > i + offset:
                        expected[i, j] = -1e9
            np.testing.assert_array_equal(mask, expected)

    def test_cached_per_shape(self):
        a = causal_mask(query_len=5, key_len=11)
        b = causal_mask(query_len=5, key_len=11)
        assert a is b  # same read-only array, no rebuild
        assert (5, 11) in _MASK_CACHE
        assert causal_mask(query_len=5, key_len=12) is not a

    def test_cached_mask_is_read_only(self):
        mask = causal_mask(query_len=4, key_len=4)
        with pytest.raises(ValueError):
            mask[0, 0] = 1.0


# ---------------------------------------------------------------------------
# Fused kernels vs the tape (bitwise, float64)
# ---------------------------------------------------------------------------
class TestKernelParityBitwise:
    def test_softmax(self):
        x = RNG(0).normal(size=(3, 4, 7)) * 5
        fast = fastpath.softmax(x, axis=-1)
        tape = Tensor(x).softmax(axis=-1).data
        assert np.array_equal(fast, tape)

    def test_softmax_with_mask_additive_minus_1e9(self):
        x = RNG(1).normal(size=(2, 4, 6))
        mask = causal_mask(query_len=4, key_len=6)
        fast = fastpath.softmax(x + mask, axis=-1)
        tape = (Tensor(x) + Tensor(np.array(mask))).softmax(axis=-1).data
        assert np.array_equal(fast, tape)

    @pytest.mark.parametrize("shape", [(5, 8), (2, 7, 8), (1, 1, 8)])
    def test_layer_norm(self, shape):
        norm = LayerNorm(shape[-1])
        norm.gamma.data[:] = RNG(2).normal(size=shape[-1])
        norm.beta.data[:] = RNG(3).normal(size=shape[-1])
        x = RNG(4).normal(size=shape)
        tape = _tape(norm, Tensor(x)).data
        with no_grad():
            fast = norm(Tensor(x)).data
        assert np.array_equal(fast, tape)
        assert np.array_equal(norm.fast_forward(x), tape)

    @pytest.mark.parametrize("shape", [(6, 5), (3, 4, 5)])
    def test_glu(self, shape):
        glu = GatedLinearUnit(shape[-1], 7, RNG(5))
        x = RNG(6).normal(size=shape)
        tape = _tape(glu, Tensor(x)).data
        with no_grad():
            fast = glu(Tensor(x)).data
        assert np.array_equal(fast, tape)

    @pytest.mark.parametrize("in_features,out_features", [(6, 6), (6, 4)])
    def test_grn_with_and_without_skip(self, in_features, out_features):
        grn = GatedResidualNetwork(in_features, 8, out_features, RNG(7))
        assert (grn.skip is None) == (in_features == out_features)
        x = RNG(8).normal(size=(2, 5, in_features))
        tape = _tape(grn, Tensor(x)).data
        with no_grad():
            fast = grn(Tensor(x)).data
        assert np.array_equal(fast, tape)

    def test_grn_with_active_dropout_pins_the_tape(self):
        """p > 0 in training mode must NOT dispatch: the fused kernel
        skips the rng draw, which would desynchronise the stream."""
        grn = GatedResidualNetwork(6, 8, 6, RNG(9), dropout=0.5)
        grn.train(True)
        x = RNG(10).normal(size=(3, 6))
        grn.dropout._rng = np.random.default_rng(99)
        with no_grad():
            dispatched = grn(Tensor(x)).data
        grn.dropout._rng = np.random.default_rng(99)
        with no_grad(), fastpath.use_fast_path(False):
            tape = grn(Tensor(x)).data
        assert np.array_equal(dispatched, tape)

    @pytest.mark.parametrize("batch,t_query,t_key,num_heads", [
        (1, 3, 3, 1), (2, 4, 9, 2), (3, 6, 6, 4),
    ])
    @pytest.mark.parametrize("masked", [False, True])
    def test_interpretable_attention(self, batch, t_query, t_key, num_heads, masked):
        d_model = 8
        attn = InterpretableMultiHeadAttention(d_model, num_heads, RNG(11))
        rng = RNG(12)
        query = rng.normal(size=(batch, t_query, d_model))
        key = rng.normal(size=(batch, t_key, d_model))
        value = rng.normal(size=(batch, t_key, d_model))
        mask = causal_mask(query_len=t_query, key_len=t_key) if masked else None

        tape_out, tape_weights = _tape(
            attn, Tensor(query), Tensor(key), Tensor(value), mask=mask
        )
        with no_grad():
            fast_out, fast_weights = attn(
                Tensor(query), Tensor(key), Tensor(value), mask=mask
            )
        assert np.array_equal(fast_out.data, tape_out.data)
        assert np.array_equal(fast_weights.data, tape_weights.data)

    def test_prepare_attention_params_concatenates_heads(self):
        attn = InterpretableMultiHeadAttention(8, 2, RNG(13))
        w, b = fastpath.prepare_attention_params(
            [(p.weight.data, p.bias.data) for p in attn._q_projs]
        )
        assert w.shape == (8, 8) and b.shape == (8,)
        np.testing.assert_array_equal(w[:, :4], attn._q_projs[0].weight.data)
        np.testing.assert_array_equal(b[4:], attn._q_projs[1].bias.data)


# ---------------------------------------------------------------------------
# Whole network + forecaster
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    series = 100 + 20 * np.sin(np.arange(400) * 2 * np.pi / 144) + rng.normal(0, 3, 400)
    forecaster = TFTForecaster(
        36, 12, d_model=16, num_heads=2, config=TrainingConfig(epochs=1, seed=0)
    ).fit(series)
    return forecaster, series


class TestNetworkFastForward:
    def test_forward_and_attention_bitwise(self, fitted):
        forecaster, _ = fitted
        net = forecaster.network
        rng = RNG(14)
        past = rng.normal(size=(3, 36, net.past_proj.in_features))
        future = rng.normal(size=(3, 12, net.future_proj.in_features))

        with no_grad(), fastpath.use_fast_path(False):
            tape = net(Tensor(past), Tensor(future)).data
            tape_attn = net._last_attention.copy()
        fast = net.fast_forward(past, future)
        assert np.array_equal(fast, tape)
        assert np.array_equal(net._last_attention, tape_attn)

    def test_forward_dispatches_under_no_grad(self, fitted):
        forecaster, _ = fitted
        net = forecaster.network
        rng = RNG(15)
        past = rng.normal(size=(2, 36, net.past_proj.in_features))
        future = rng.normal(size=(2, 12, net.future_proj.in_features))
        with no_grad():
            dispatched = net(Tensor(past), Tensor(future)).data
        assert np.array_equal(dispatched, net.fast_forward(past, future))

    def test_predict_bitwise_vs_tape(self, fitted):
        forecaster, series = fitted
        context = series[-36:]
        with no_grad(), fastpath.use_fast_path(False):
            tape = forecaster.predict(context, start_index=364)
            tape_attn = forecaster.attention_weights().copy()
        fast = forecaster.predict(context, start_index=364)
        assert np.array_equal(fast.values, tape.values)
        assert np.array_equal(forecaster.attention_weights(), tape_attn)


class TestFloat32:
    def test_dtype_threads_through_every_kernel(self, fitted):
        forecaster, _ = fitted
        net = forecaster.network
        rng = RNG(16)
        past = rng.normal(size=(2, 36, net.past_proj.in_features))
        future = rng.normal(size=(2, 12, net.future_proj.in_features))
        out = net.fast_forward(past, future, dtype=np.float32)
        assert out.dtype == np.float32
        assert net._last_attention.dtype == np.float32

    def test_float32_close_to_float64(self, fitted):
        forecaster, _ = fitted
        net = forecaster.network
        rng = RNG(17)
        past = rng.normal(size=(2, 36, net.past_proj.in_features))
        future = rng.normal(size=(2, 12, net.future_proj.in_features))
        out64 = net.fast_forward(past, future)
        out32 = net.fast_forward(past, future, dtype=np.float32)
        np.testing.assert_allclose(out32, out64, atol=1e-4)

    def test_predict_with_inference_dtype(self, fitted):
        forecaster, series = fitted
        context = series[-36:]
        base = forecaster.predict(context, start_index=364)
        forecaster.set_inference_dtype(np.float32)
        try:
            fast32 = forecaster.predict(context, start_index=364)
        finally:
            forecaster.set_inference_dtype(np.float64)
        scale = np.maximum(np.abs(base.values), 1.0)
        assert np.max(np.abs(fast32.values - base.values) / scale) < 1e-4
        # float64 mode bitwise intact after the round trip
        after = forecaster.predict(context, start_index=364)
        assert np.array_equal(after.values, base.values)
