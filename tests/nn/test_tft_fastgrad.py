"""Gradient parity for the TFT's analytic training kernels.

Mirrors ``test_fastgrad.py``'s contract for the attention stack: each
closed-form backward (softmax JVP, LayerNorm, GLU, GRN, interpretable
attention, quantile loss) is checked against central finite differences
of its own forward *and* against the autograd tape, then the full
``TFTForecaster._fastgrad_loss_backward`` and an end-to-end fit
trajectory are pinned to the tape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import TFTForecaster, TrainingConfig
from repro.nn import (
    GatedLinearUnit,
    GatedResidualNetwork,
    InterpretableMultiHeadAttention,
    LayerNorm,
    Tensor,
    causal_mask,
    fastgrad,
    fastpath,
)
from repro.nn import functional as F

RNG = np.random.default_rng


def _fd_grad(fn, x, eps=1e-6):
    """Central finite differences of scalar fn at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


def _param_grads(module):
    return {
        n: (None if p.grad is None else p.grad.copy())
        for n, p in module.named_parameters()
    }


def _assert_grads_match(fast, tape, rtol=1e-9, atol=1e-11):
    assert set(fast) == set(tape)
    for name in tape:
        if tape[name] is None:
            assert fast[name] is None, name
        else:
            np.testing.assert_allclose(
                fast[name], tape[name], rtol=rtol, atol=atol, err_msg=name
            )


# ---------------------------------------------------------------------------
# Kernels vs finite differences
# ---------------------------------------------------------------------------
class TestKernelsAgainstFiniteDifferences:
    def test_softmax_backward(self):
        rng = RNG(0)
        x = rng.normal(size=(3, 5))
        proj = rng.normal(size=(3, 5))

        def loss():
            return float((fastpath.softmax(x, axis=-1) * proj).sum())

        grad = fastgrad.softmax_backward(fastpath.softmax(x, axis=-1), proj)
        np.testing.assert_allclose(grad, _fd_grad(loss, x), atol=1e-6)

    def test_layer_norm_backward(self):
        norm = LayerNorm(6)
        rng = RNG(1)
        norm.gamma.data[:] = rng.normal(size=6)
        norm.beta.data[:] = rng.normal(size=6)
        x = rng.normal(size=(4, 6))
        proj = rng.normal(size=(4, 6))

        def loss():
            return float((norm.fast_forward(x) * proj).sum())

        norm.zero_grad()
        _, cache = fastgrad.layer_norm_forward_train(norm, x)
        dx = fastgrad.layer_norm_backward(norm, cache, proj)
        np.testing.assert_allclose(dx, _fd_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(
            norm.gamma.grad, _fd_grad(loss, norm.gamma.data), atol=1e-6
        )
        np.testing.assert_allclose(
            norm.beta.grad, _fd_grad(loss, norm.beta.data), atol=1e-6
        )

    def test_glu_backward(self):
        glu = GatedLinearUnit(5, 4, RNG(2))
        rng = RNG(3)
        x = rng.normal(size=(3, 5))
        proj = rng.normal(size=(3, 4))

        def loss():
            return float((glu.fast_forward(x) * proj).sum())

        glu.zero_grad()
        _, cache = fastgrad.glu_forward_train(glu, x)
        dx = fastgrad.glu_backward(glu, cache, proj)
        np.testing.assert_allclose(dx, _fd_grad(loss, x), atol=1e-6)
        for name, param in glu.named_parameters():
            np.testing.assert_allclose(
                param.grad, _fd_grad(loss, param.data), atol=1e-6, err_msg=name
            )

    @pytest.mark.parametrize("in_features,out_features", [(5, 5), (5, 3)])
    def test_grn_backward(self, in_features, out_features):
        grn = GatedResidualNetwork(in_features, 6, out_features, RNG(4))
        rng = RNG(5)
        x = rng.normal(size=(3, in_features))
        proj = rng.normal(size=(3, out_features))

        def loss():
            return float((grn.fast_forward(x) * proj).sum())

        grn.zero_grad()
        _, cache = fastgrad.grn_forward_train(grn, x)
        dx = fastgrad.grn_backward(grn, cache, proj)
        np.testing.assert_allclose(dx, _fd_grad(loss, x), atol=1e-6)
        for name, param in grn.named_parameters():
            np.testing.assert_allclose(
                param.grad, _fd_grad(loss, param.data), atol=1e-6, err_msg=name
            )

    def test_attention_backward(self):
        attn = InterpretableMultiHeadAttention(6, 2, RNG(6))
        rng = RNG(7)
        query = rng.normal(size=(2, 3, 6))
        key = rng.normal(size=(2, 5, 6))
        value = rng.normal(size=(2, 5, 6))
        proj = rng.normal(size=(2, 3, 6))
        mask = causal_mask(query_len=3, key_len=5)

        def loss():
            out, _ = attn.fast_forward(query, key, value, mask=mask)
            return float((out * proj).sum())

        attn.zero_grad()
        _, _, cache = fastgrad.attention_forward_train(
            attn, query, key, value, mask=mask
        )
        dquery, dkey, dvalue = fastgrad.attention_backward(attn, cache, proj)
        np.testing.assert_allclose(dquery, _fd_grad(loss, query), atol=1e-5)
        np.testing.assert_allclose(dkey, _fd_grad(loss, key), atol=1e-5)
        np.testing.assert_allclose(dvalue, _fd_grad(loss, value), atol=1e-5)
        for name, param in attn.named_parameters():
            np.testing.assert_allclose(
                param.grad, _fd_grad(loss, param.data), atol=1e-5, err_msg=name
            )

    def test_quantile_loss_grads(self):
        rng = RNG(8)
        predictions = rng.normal(size=(3, 4, 3))
        target = rng.normal(size=(3, 4))
        quantiles = [0.1, 0.5, 0.9]

        loss, dpred = fastgrad.quantile_loss_grads(predictions, target, quantiles)
        ref = F.quantile_loss(Tensor(predictions), target, quantiles).item()
        assert loss == ref  # bitwise: same composition, same order

        def loss_fn():
            return fastgrad.quantile_loss_grads(predictions, target, quantiles)[0]

        np.testing.assert_allclose(dpred, _fd_grad(loss_fn, predictions), atol=1e-6)


# ---------------------------------------------------------------------------
# Kernels vs the tape
# ---------------------------------------------------------------------------
class TestKernelsAgainstTape:
    @pytest.mark.parametrize("shape", [(4, 6), (2, 5, 6), (1, 1, 6)])
    def test_layer_norm(self, shape):
        norm = LayerNorm(shape[-1])
        rng = RNG(9)
        norm.gamma.data[:] = rng.normal(size=shape[-1])
        x = rng.normal(size=shape)
        proj = rng.normal(size=shape)

        norm.zero_grad()
        xt = Tensor(x, requires_grad=True)
        out = norm(xt)
        (out * Tensor(proj)).sum().backward()
        tape_grads = _param_grads(norm)
        tape_dx = xt.grad.copy()
        tape_out = out.data

        norm.zero_grad()
        fast_out, cache = fastgrad.layer_norm_forward_train(norm, x)
        assert np.array_equal(fast_out, tape_out)  # bitwise forward
        dx = fastgrad.layer_norm_backward(norm, cache, proj)
        np.testing.assert_allclose(dx, tape_dx, rtol=1e-9, atol=1e-11)
        _assert_grads_match(_param_grads(norm), tape_grads)

    @pytest.mark.parametrize("batch", [1, 4])
    def test_glu(self, batch):
        glu = GatedLinearUnit(5, 4, RNG(10))
        rng = RNG(11)
        x = rng.normal(size=(batch, 3, 5))
        proj = rng.normal(size=(batch, 3, 4))

        glu.zero_grad()
        xt = Tensor(x, requires_grad=True)
        out = glu(xt)
        (out * Tensor(proj)).sum().backward()
        tape_grads = _param_grads(glu)
        tape_dx = xt.grad.copy()
        tape_out = out.data

        glu.zero_grad()
        fast_out, cache = fastgrad.glu_forward_train(glu, x)
        assert np.array_equal(fast_out, tape_out)
        dx = fastgrad.glu_backward(glu, cache, proj)
        np.testing.assert_allclose(dx, tape_dx, rtol=1e-9, atol=1e-11)
        _assert_grads_match(_param_grads(glu), tape_grads)

    @pytest.mark.parametrize("in_features,out_features", [(6, 6), (6, 4)])
    def test_grn(self, in_features, out_features):
        grn = GatedResidualNetwork(in_features, 7, out_features, RNG(12))
        rng = RNG(13)
        x = rng.normal(size=(2, 4, in_features))
        proj = rng.normal(size=(2, 4, out_features))

        grn.zero_grad()
        xt = Tensor(x, requires_grad=True)
        out = grn(xt)
        (out * Tensor(proj)).sum().backward()
        tape_grads = _param_grads(grn)
        tape_dx = xt.grad.copy()
        tape_out = out.data

        grn.zero_grad()
        fast_out, cache = fastgrad.grn_forward_train(grn, x)
        assert np.array_equal(fast_out, tape_out)
        dx = fastgrad.grn_backward(grn, cache, proj)
        np.testing.assert_allclose(dx, tape_dx, rtol=1e-9, atol=1e-11)
        _assert_grads_match(_param_grads(grn), tape_grads)

    def test_grn_with_active_dropout(self):
        """Dropout active: both paths must consume the same rng stream."""
        grn = GatedResidualNetwork(5, 6, 5, RNG(14), dropout=0.4)
        grn.train(True)
        rng = RNG(15)
        x = rng.normal(size=(3, 5))
        proj = rng.normal(size=(3, 5))

        grn.zero_grad()
        grn.dropout._rng = np.random.default_rng(77)
        xt = Tensor(x, requires_grad=True)
        out = grn(xt)
        (out * Tensor(proj)).sum().backward()
        tape_grads = _param_grads(grn)
        tape_dx = xt.grad.copy()
        tape_out = out.data

        grn.zero_grad()
        grn.dropout._rng = np.random.default_rng(77)
        fast_out, cache = fastgrad.grn_forward_train(grn, x)
        assert np.array_equal(fast_out, tape_out)
        dx = fastgrad.grn_backward(grn, cache, proj)
        np.testing.assert_allclose(dx, tape_dx, rtol=1e-9, atol=1e-11)
        _assert_grads_match(_param_grads(grn), tape_grads)

    @pytest.mark.parametrize("batch,t_query,t_key,num_heads", [
        (1, 2, 2, 1), (3, 4, 7, 2), (2, 5, 5, 3),
    ])
    @pytest.mark.parametrize("masked", [False, True])
    def test_attention(self, batch, t_query, t_key, num_heads, masked):
        d_model = 6
        attn = InterpretableMultiHeadAttention(d_model, num_heads, RNG(16))
        rng = RNG(17)
        query = rng.normal(size=(batch, t_query, d_model))
        key = rng.normal(size=(batch, t_key, d_model))
        value = rng.normal(size=(batch, t_key, d_model))
        proj = rng.normal(size=(batch, t_query, d_model))
        mask = causal_mask(query_len=t_query, key_len=t_key) if masked else None

        attn.zero_grad()
        qt = Tensor(query, requires_grad=True)
        kt = Tensor(key, requires_grad=True)
        vt = Tensor(value, requires_grad=True)
        out, weights = attn(qt, kt, vt, mask=mask)
        (out * Tensor(proj)).sum().backward()
        tape_grads = _param_grads(attn)
        tape_dq, tape_dk, tape_dv = qt.grad.copy(), kt.grad.copy(), vt.grad.copy()
        tape_out, tape_weights = out.data, weights.data

        attn.zero_grad()
        fast_out, fast_weights, cache = fastgrad.attention_forward_train(
            attn, query, key, value, mask=mask
        )
        assert np.array_equal(fast_out, tape_out)
        assert np.array_equal(fast_weights, tape_weights)
        dq, dk, dv = fastgrad.attention_backward(attn, cache, proj)
        np.testing.assert_allclose(dq, tape_dq, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dk, tape_dk, rtol=1e-9, atol=1e-11)
        np.testing.assert_allclose(dv, tape_dv, rtol=1e-9, atol=1e-11)
        # The key-projection bias grads are pure cancellation noise
        # (softmax is shift-invariant along the key axis, so their true
        # gradient is exactly zero) — atol alone covers them.
        _assert_grads_match(_param_grads(attn), tape_grads)


# ---------------------------------------------------------------------------
# Full model loss + fit trajectory vs the tape
# ---------------------------------------------------------------------------
def _tft(config=None):
    fc = TFTForecaster(
        16, 8, d_model=8, num_heads=2,
        config=config or TrainingConfig(epochs=1, seed=0),
    )
    fc.network = fc._build(RNG(18))
    return fc


class TestModelLossParity:
    @pytest.mark.parametrize("batch", [1, 6])
    def test_tft(self, batch):
        fc = _tft()
        rng = RNG(19)
        context = rng.normal(size=(batch, fc.context_length))
        horizon = rng.normal(size=(batch, fc.horizon))
        starts = rng.integers(0, 500, size=batch)

        fc.network.zero_grad()
        with fastpath.use_fast_path(False):
            loss = fc._loss(context.copy(), horizon.copy(), starts)
            loss.backward()
        tape_loss = loss.item()
        tape_grads = _param_grads(fc.network)

        fc.network.zero_grad()
        fast_loss = fc._fastgrad_loss_backward(context.copy(), horizon.copy(), starts)
        assert fast_loss == tape_loss  # bitwise: same compositions, same order
        _assert_grads_match(_param_grads(fc.network), tape_grads)

    def test_supports_flag(self):
        assert TFTForecaster(8, 4)._supports_fastgrad()

    def test_attention_pattern_updated_by_fastgrad(self):
        fc = _tft()
        rng = RNG(20)
        context = rng.normal(size=(2, fc.context_length))
        horizon = rng.normal(size=(2, fc.horizon))
        starts = np.array([0, 5])
        fc._fastgrad_loss_backward(context, horizon, starts)
        weights = fc.attention_weights()
        assert weights is not None and weights.shape == (2, fc.horizon, 24)


class TestFitTrajectoryParity:
    def test_trajectories_match(self):
        rng = RNG(21)
        series = 50 + 10 * np.sin(np.arange(220) * 2 * np.pi / 24) + rng.normal(0, 1, 220)

        def fit(fast):
            cfg = TrainingConfig(
                epochs=3, batch_size=16, seed=0, patience=0, train_fast_path=fast
            )
            return TFTForecaster(16, 8, d_model=8, num_heads=2, config=cfg).fit(series)

        fast, tape = fit(True), fit(False)
        fast_losses = [r["train_loss"] for r in fast.history]
        tape_losses = [r["train_loss"] for r in tape.history]
        np.testing.assert_allclose(fast_losses, tape_losses, rtol=1e-10)
        for (name, pf), (_, pt) in zip(
            fast.network.named_parameters(), tape.network.named_parameters()
        ):
            np.testing.assert_allclose(
                pf.data, pt.data, rtol=1e-8, atol=1e-10, err_msg=name
            )
