"""float32 mode of the tape-free kernel stack.

float64 (the default) stays bitwise-identical to the autograd tape;
float32 is a speed/accuracy trade behind an explicit opt-in
(``set_inference_dtype`` / ``--dtype float32``).  These tests pin three
things: the dtype actually threads through every kernel (no silent
float64 promotion), the float64 path is untouched by the threading, and
float32 results stay statistically close to float64.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import DeepARForecaster, TrainingConfig
from repro.nn import fastgrad, fastpath
from repro.nn.rnn import LSTM

HIDDEN = 8


@pytest.fixture(scope="module")
def lstm():
    return LSTM(input_size=3, hidden_size=HIDDEN, rng=np.random.default_rng(0), num_layers=2)


@pytest.fixture(scope="module")
def sequence():
    return np.random.default_rng(1).normal(size=(4, 10, 3))


# -- dtype threading -------------------------------------------------------


def test_prepare_lstm_params_casts_weights(lstm):
    prepared = fastpath.prepare_lstm_params(lstm._layer_params(), HIDDEN, dtype=np.float32)
    for w_ih, w_hh, bias in prepared:
        assert w_ih.dtype == w_hh.dtype == bias.dtype == np.float32


def test_lstm_forward_float32_stays_float32(lstm, sequence):
    outputs, state = lstm.fast_forward(sequence, dtype=np.float32)
    assert outputs.dtype == np.float32
    for h, c in state:
        assert h.dtype == c.dtype == np.float32


def test_lstm_step_float32_stays_float32(lstm):
    x = np.random.default_rng(2).normal(size=(4, 3))
    state = [(np.zeros((4, HIDDEN)), np.zeros((4, HIDDEN))) for _ in range(2)]
    top, new_state = lstm.fast_step(x, state, dtype=np.float32)
    assert top.dtype == np.float32
    for h, c in new_state:
        assert h.dtype == c.dtype == np.float32


def test_sigmoid_preserves_dtype():
    x32 = np.linspace(-20, 20, 101, dtype=np.float32)
    out32 = fastpath.sigmoid(x32)
    assert out32.dtype == np.float32
    out64 = fastpath.sigmoid(x32.astype(np.float64))
    np.testing.assert_allclose(out32, out64, atol=1e-6)


def test_fastgrad_forward_and_backward_float32(lstm, sequence):
    outputs, caches = fastgrad.lstm_forward_train(
        sequence, lstm._layer_params(), HIDDEN, dtype=np.float32
    )
    assert outputs.dtype == np.float32
    grads, _, _ = fastgrad.lstm_backward(np.ones_like(outputs), caches, HIDDEN)
    for dw_ih, dw_hh, db in grads:
        assert dw_ih.dtype == dw_hh.dtype == db.dtype == np.float32


# -- float64 default untouched ---------------------------------------------


def test_default_dtype_is_float64_and_matches_explicit(lstm, sequence):
    default_out, default_state = lstm.fast_forward(sequence)
    explicit_out, explicit_state = lstm.fast_forward(sequence, dtype=np.float64)
    assert default_out.dtype == np.float64
    assert np.array_equal(default_out, explicit_out)
    for (h_a, c_a), (h_b, c_b) in zip(default_state, explicit_state):
        assert np.array_equal(h_a, h_b) and np.array_equal(c_a, c_b)


def test_float32_close_to_float64_forward(lstm, sequence):
    out64, _ = lstm.fast_forward(sequence)
    out32, _ = lstm.fast_forward(sequence, dtype=np.float32)
    np.testing.assert_allclose(out32, out64, atol=1e-5)


# -- forecaster integration ------------------------------------------------


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    series = 100 + 20 * np.sin(np.arange(400) * 2 * np.pi / 144) + rng.normal(0, 3, 400)
    return DeepARForecaster(
        36, 12, hidden_size=8, num_layers=1, num_samples=50,
        config=TrainingConfig(epochs=1, seed=0),
    ).fit(series), series


def test_set_inference_dtype_validates():
    forecaster = DeepARForecaster(36, 12)
    assert forecaster.inference_dtype == np.dtype(np.float64)
    assert forecaster.set_inference_dtype("float32") is forecaster
    assert forecaster.inference_dtype == np.dtype(np.float32)
    with pytest.raises(ValueError, match="float32 or float64"):
        forecaster.set_inference_dtype(np.int32)


def test_float32_sampling_deterministic_and_close_to_float64(fitted):
    forecaster, series = fitted
    context = series[-36:]

    forecaster.reseed_sampler(7)
    paths64 = forecaster.sample_paths(context, start_index=364).samples

    forecaster.set_inference_dtype(np.float32)
    try:
        forecaster.reseed_sampler(7)
        paths32_a = forecaster.sample_paths(context, start_index=364).samples
        forecaster.reseed_sampler(7)
        paths32_b = forecaster.sample_paths(context, start_index=364).samples
    finally:
        forecaster.set_inference_dtype(np.float64)

    # Same seed, same dtype -> bit-identical.
    assert np.array_equal(paths32_a, paths32_b)
    # Across dtypes the gate is statistical (standard_t rejection
    # sampling may consume different draws once an intermediate differs
    # in the last ulp): per-step quantiles must agree closely relative
    # to the sampling spread.
    q64 = np.quantile(paths64, [0.1, 0.5, 0.9], axis=0)
    q32 = np.quantile(paths32_a, [0.1, 0.5, 0.9], axis=0)
    spread = np.maximum(q64[2] - q64[0], 1e-6)
    assert np.max(np.abs(q32 - q64) / spread) < 0.5


def test_float64_mode_unaffected_by_prior_float32_use(fitted):
    """Switching to float32 and back must leave float64 bitwise intact."""
    forecaster, series = fitted
    context = series[-36:]
    forecaster.reseed_sampler(3)
    before = forecaster.sample_paths(context, start_index=364).samples
    forecaster.set_inference_dtype(np.float32)
    forecaster.sample_paths(context, start_index=364)
    forecaster.set_inference_dtype(np.float64)
    forecaster.reseed_sampler(3)
    after = forecaster.sample_paths(context, start_index=364).samples
    assert np.array_equal(before, after)
