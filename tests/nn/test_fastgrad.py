"""Gradient parity for the analytic training kernels (repro.nn.fastgrad).

Every kernel is checked two ways: against central finite differences of
its own forward (the math is right) and against the autograd tape (the
fast path optimises the identical objective).  The tape is the oracle —
``TrainingConfig(train_fast_path=False)`` selects it — so these tests
are what licenses the fast path as the default.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import DeepARForecaster, MLPForecaster, TrainingConfig
from repro.nn import LSTM, Tensor, fastgrad
from repro.nn import functional as F

RNG = np.random.default_rng


def _fd_grad(fn, x, eps=1e-6):
    """Central finite differences of scalar fn at array x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn()
        flat[i] = orig - eps
        lo = fn()
        flat[i] = orig
        gflat[i] = (hi - lo) / (2.0 * eps)
    return grad


# ---------------------------------------------------------------------------
# Elementwise / dense kernels vs finite differences
# ---------------------------------------------------------------------------
class TestKernelsAgainstFiniteDifferences:
    def test_linear_backward(self):
        rng = RNG(0)
        x = rng.normal(size=(3, 4, 5))
        w = rng.normal(size=(5, 2))
        b = rng.normal(size=2)
        proj = rng.normal(size=(3, 4, 2))  # scalar loss = sum(out * proj)

        def loss():
            return float((((x @ w) + b) * proj).sum())

        dx, dw, db = fastgrad.linear_backward(x, w, proj)
        np.testing.assert_allclose(dx, _fd_grad(loss, x), atol=1e-6)
        np.testing.assert_allclose(dw, _fd_grad(loss, w), atol=1e-6)
        np.testing.assert_allclose(db, _fd_grad(loss, b), atol=1e-6)
        assert fastgrad.linear_backward(x, w, proj, need_dx=False)[0] is None

    @pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "softplus"])
    def test_activation_backwards(self, name):
        rng = RNG(1)
        x = rng.normal(size=(4, 6))
        proj = rng.normal(size=(4, 6))
        forwards = {
            "sigmoid": lambda a: 1.0 / (1.0 + np.exp(-a)),
            "tanh": np.tanh,
            "relu": lambda a: a * (a > 0),
            "softplus": lambda a: np.logaddexp(0.0, a),
        }
        fwd = forwards[name]

        def loss():
            return float((fwd(x) * proj).sum())

        if name in ("sigmoid", "tanh"):
            grad = getattr(fastgrad, f"{name}_backward")(fwd(x), proj)
        else:
            grad = getattr(fastgrad, f"{name}_backward")(x, proj)
        np.testing.assert_allclose(grad, _fd_grad(loss, x), atol=1e-6)

    def test_digamma_is_derivative_of_log_gamma(self):
        x = np.linspace(0.5, 30.0, 40)
        fd = np.zeros_like(x)
        eps = 1e-6
        fd = (fastgrad.log_gamma(x + eps) - fastgrad.log_gamma(x - eps)) / (2 * eps)
        np.testing.assert_allclose(fastgrad.digamma(x), fd, atol=1e-7)

    def test_gaussian_nll_grads(self):
        rng = RNG(2)
        mean = rng.normal(size=(5, 3))
        std = rng.uniform(0.3, 2.0, size=(5, 3))
        target = rng.normal(size=(5, 3))

        loss, dmean, dstd = fastgrad.gaussian_nll_grads(mean, std, target)
        ref = F.gaussian_nll(Tensor(mean), Tensor(std), target).item()
        assert loss == pytest.approx(ref, rel=1e-12)

        def loss_fn():
            return fastgrad.gaussian_nll_grads(mean, std, target)[0]

        np.testing.assert_allclose(dmean, _fd_grad(loss_fn, mean), atol=1e-8)
        np.testing.assert_allclose(dstd, _fd_grad(loss_fn, std), atol=1e-8)

    def test_student_t_nll_grads(self):
        rng = RNG(3)
        mean = rng.normal(size=(4, 3))
        scale = rng.uniform(0.3, 2.0, size=(4, 3))
        df = rng.uniform(2.5, 12.0, size=(4, 3))
        target = rng.normal(size=(4, 3))

        loss, dmean, dscale, ddf = fastgrad.student_t_nll_grads(mean, scale, df, target)
        ref = F.student_t_nll(Tensor(mean), Tensor(scale), Tensor(df), target).item()
        assert loss == pytest.approx(ref, rel=1e-12)

        def loss_fn():
            return fastgrad.student_t_nll_grads(mean, scale, df, target)[0]

        np.testing.assert_allclose(dmean, _fd_grad(loss_fn, mean), atol=1e-7)
        np.testing.assert_allclose(dscale, _fd_grad(loss_fn, scale), atol=1e-7)
        np.testing.assert_allclose(ddf, _fd_grad(loss_fn, df), atol=1e-7)


# ---------------------------------------------------------------------------
# Gate permutation
# ---------------------------------------------------------------------------
class TestGatePermutation:
    @pytest.mark.parametrize("hs", [1, 3, 8])
    def test_round_trip(self, hs):
        perm = fastgrad.gate_permutation(hs)
        assert np.array_equal(perm[perm], np.arange(4 * hs))  # involutive
        rng = RNG(4)
        arr = rng.normal(size=(2, 4 * hs))
        once = fastgrad.permute_gate_columns(arr, hs)
        assert not np.array_equal(once, arr) or hs == 0
        np.testing.assert_array_equal(fastgrad.permute_gate_columns(once, hs), arr)

    def test_maps_ifgo_to_ifog(self):
        hs = 2
        blocks = np.repeat(np.array([0, 1, 2, 3]), hs)[None, :]  # i f g o
        permuted = fastgrad.permute_gate_columns(blocks.astype(float), hs)
        np.testing.assert_array_equal(permuted[0], np.repeat([0, 1, 3, 2], hs))


# ---------------------------------------------------------------------------
# Fused LSTM BPTT vs the tape
# ---------------------------------------------------------------------------
class TestLSTMAgainstTape:
    @pytest.mark.parametrize(
        "batch,steps,input_size,hidden,layers",
        [(1, 3, 2, 4, 1), (5, 7, 3, 6, 2), (2, 4, 1, 5, 3)],
    )
    def test_forward_and_grads_match(self, batch, steps, input_size, hidden, layers):
        rng = RNG(5)
        lstm = LSTM(input_size, hidden, rng, num_layers=layers)
        x = rng.normal(size=(batch, steps, input_size))
        proj = rng.normal(size=(batch, steps, hidden))

        # Tape reference: projection loss over the full hidden sequence.
        xt = Tensor(x, requires_grad=True)
        seq, _ = lstm(xt)
        (seq * Tensor(proj)).sum().backward()
        tape_grads = {n: p.grad.copy() for n, p in lstm.named_parameters()}
        tape_dx = xt.grad.copy()
        lstm.zero_grad()

        out, caches = fastgrad.lstm_forward_train(x, lstm._layer_params(), hidden)
        np.testing.assert_allclose(out, seq.data, rtol=1e-12, atol=1e-12)
        grads, dx, _ = fastgrad.lstm_backward(proj, caches, hidden, need_dx=True)
        np.testing.assert_allclose(dx, tape_dx, rtol=1e-9, atol=1e-11)
        for layer, (dw_ih, dw_hh, db) in enumerate(grads):
            for name, got in (("w_ih", dw_ih), ("w_hh", dw_hh), ("bias", db)):
                want = tape_grads[f"cell{layer}.{name}"]
                np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-11)

    def test_weight_grads_via_finite_differences(self):
        rng = RNG(6)
        hidden = 3
        lstm = LSTM(2, hidden, rng, num_layers=1)
        params = lstm._layer_params()
        x = rng.normal(size=(2, 4, 2))
        proj = rng.normal(size=(2, 4, hidden))

        def loss():
            out, _ = fastgrad.lstm_forward_train(x, params, hidden)
            return float((out * proj).sum())

        _, caches = fastgrad.lstm_forward_train(x, params, hidden)
        grads, _, _ = fastgrad.lstm_backward(proj, caches, hidden)
        dw_ih, dw_hh, db = grads[0]
        w_ih, w_hh, bias = params[0]
        np.testing.assert_allclose(dw_ih, _fd_grad(loss, w_ih), atol=1e-6)
        np.testing.assert_allclose(dw_hh, _fd_grad(loss, w_hh), atol=1e-6)
        np.testing.assert_allclose(db, _fd_grad(loss, bias), atol=1e-6)


# ---------------------------------------------------------------------------
# Full model losses: fast path vs tape
# ---------------------------------------------------------------------------
def _batch(forecaster, batch=6, seed=7):
    rng = RNG(seed)
    context = rng.normal(size=(batch, forecaster.context_length))
    horizon = rng.normal(size=(batch, forecaster.horizon))
    starts = rng.integers(0, 500, size=batch)
    return context, horizon, starts


def _tape_loss_and_grads(forecaster, batch):
    forecaster.network.zero_grad()
    loss = forecaster._loss(*batch)
    loss.backward()
    grads = {
        n: (None if p.grad is None else p.grad.copy())
        for n, p in forecaster.network.named_parameters()
    }
    return loss.item(), grads


def _fast_loss_and_grads(forecaster, batch):
    forecaster.network.zero_grad()
    loss = forecaster._fastgrad_loss_backward(*batch)
    grads = {
        n: (None if p.grad is None else p.grad.copy())
        for n, p in forecaster.network.named_parameters()
    }
    return loss, grads


def _assert_grads_match(fast, tape, rtol=1e-9):
    assert set(fast) == set(tape)
    for name in tape:
        if tape[name] is None:
            assert fast[name] is None, name
        else:
            np.testing.assert_allclose(
                fast[name], tape[name], rtol=rtol, atol=1e-11, err_msg=name
            )


class TestModelLossParity:
    @pytest.mark.parametrize("likelihood", ["student_t", "gaussian"])
    def test_deepar(self, likelihood):
        fc = DeepARForecaster(
            12, 6, hidden_size=8, num_layers=2, likelihood=likelihood,
            config=TrainingConfig(epochs=1, seed=0),
        )
        fc.network = fc._build(RNG(0))
        batch = _batch(fc)
        tape_loss, tape_grads = _tape_loss_and_grads(fc, batch)
        fast_loss, fast_grads = _fast_loss_and_grads(fc, batch)
        assert fast_loss == pytest.approx(tape_loss, rel=1e-12)
        _assert_grads_match(fast_grads, tape_grads)

    def test_mlp(self):
        fc = MLPForecaster(10, 4, hidden_size=16, config=TrainingConfig(epochs=1))
        fc.network = fc._build(RNG(1))
        batch = _batch(fc)
        tape_loss, tape_grads = _tape_loss_and_grads(fc, batch)
        fast_loss, fast_grads = _fast_loss_and_grads(fc, batch)
        assert fast_loss == pytest.approx(tape_loss, rel=1e-12)
        _assert_grads_match(fast_grads, tape_grads)

    def test_supports_flags(self):
        assert DeepARForecaster(8, 4)._supports_fastgrad()
        assert MLPForecaster(8, 4)._supports_fastgrad()


class TestFitTrajectoryParity:
    """End-to-end: training with train_fast_path=True follows the same
    loss trajectory (and produces the same weights) as the tape."""

    @pytest.mark.parametrize(
        "factory",
        [
            lambda cfg: DeepARForecaster(16, 8, hidden_size=8, num_layers=1, config=cfg),
            lambda cfg: MLPForecaster(16, 8, hidden_size=8, config=cfg),
        ],
        ids=["deepar", "mlp"],
    )
    def test_trajectories_match(self, factory):
        rng = RNG(8)
        series = 50 + 10 * np.sin(np.arange(220) * 2 * np.pi / 24) + rng.normal(0, 1, 220)

        def fit(fast):
            cfg = TrainingConfig(
                epochs=3, batch_size=16, seed=0, patience=0, train_fast_path=fast
            )
            return factory(cfg).fit(series)

        fast, tape = fit(True), fit(False)
        fast_losses = [r["train_loss"] for r in fast.history]
        tape_losses = [r["train_loss"] for r in tape.history]
        np.testing.assert_allclose(fast_losses, tape_losses, rtol=1e-10)
        for (name, pf), (_, pt) in zip(
            fast.network.named_parameters(), tape.network.named_parameters()
        ):
            np.testing.assert_allclose(
                pf.data, pt.data, rtol=1e-8, atol=1e-10, err_msg=name
            )
