"""Tests for optimizers, schedules, dataloaders, and serialization."""

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    CosineLR,
    DataLoader,
    Linear,
    Parameter,
    StepLR,
    Tensor,
    WindowDataset,
    clip_grad_norm,
    load_module,
    load_state,
    save_module,
    save_state,
    train_validation_split,
)
from repro.nn import functional as F


def quadratic_params():
    return [Parameter(np.array([5.0, -3.0]))]


class TestSGD:
    def test_converges_on_quadratic(self):
        params = quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss = (params[0] * params[0]).sum()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-6)

    def test_momentum_accelerates(self):
        plain, momentum = quadratic_params(), quadratic_params()
        opt_plain = SGD(plain, lr=0.01)
        opt_momentum = SGD(momentum, lr=0.01, momentum=0.9)
        for _ in range(50):
            for params, opt in [(plain, opt_plain), (momentum, opt_momentum)]:
                opt.zero_grad()
                (params[0] * params[0]).sum().backward()
                opt.step()
        assert np.abs(momentum[0].data).sum() < np.abs(plain[0].data).sum()

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            SGD(quadratic_params(), lr=-1.0)
        with pytest.raises(ValueError):
            SGD(quadratic_params(), lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_skips_parameters_without_grads(self):
        params = quadratic_params()
        SGD(params, lr=0.1).step()  # no backward ran; must not raise
        np.testing.assert_array_equal(params[0].data, [5.0, -3.0])


class TestAdam:
    def test_converges_on_quadratic(self):
        params = quadratic_params()
        opt = Adam(params, lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            (params[0] * params[0]).sum().backward()
            opt.step()
        np.testing.assert_allclose(params[0].data, [0.0, 0.0], atol=1e-4)

    def test_weight_decay_shrinks_weights(self):
        params = [Parameter(np.array([10.0]))]
        opt = Adam(params, lr=0.05, weight_decay=0.5)
        for _ in range(100):
            opt.zero_grad()
            # loss independent of the parameter; only decay acts
            params[0].grad = np.zeros(1)
            opt.step()
        assert abs(params[0].data[0]) < 10.0

    def test_trains_linear_regression(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(64, 3))
        true_w = np.array([[1.0], [-2.0], [0.5]])
        y = x @ true_w
        layer = Linear(3, 1, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            F.mse_loss(layer(Tensor(x)), y).backward()
            opt.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.02)


class TestClipAndSchedules:
    def test_clip_grad_norm_scales(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        pre = clip_grad_norm([param], max_norm=1.0)
        assert pre == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_clip_noop_when_small(self):
        param = Parameter(np.zeros(2))
        param.grad = np.array([0.1, 0.1])
        clip_grad_norm([param], max_norm=5.0)
        np.testing.assert_array_equal(param.grad, [0.1, 0.1])

    def test_step_lr_halves(self):
        opt = SGD(quadratic_params(), lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5

    def test_cosine_lr_reaches_min(self):
        opt = SGD(quadratic_params(), lr=1.0)
        sched = CosineLR(opt, total=10, min_lr=0.01)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.01)


class TestWindowDataset:
    def test_window_count(self):
        ds = WindowDataset(np.arange(10.0), context_length=3, horizon=2)
        assert len(ds) == 6

    def test_window_contents(self):
        ds = WindowDataset(np.arange(10.0), context_length=3, horizon=2)
        w = ds[0]
        np.testing.assert_array_equal(w.context, [0, 1, 2])
        np.testing.assert_array_equal(w.horizon, [3, 4])

    def test_stride(self):
        ds = WindowDataset(np.arange(10.0), context_length=3, horizon=2, stride=3)
        assert len(ds) == 2

    def test_multiple_series(self):
        ds = WindowDataset([np.arange(6.0), np.arange(6.0)], context_length=2, horizon=1)
        assert len(ds) == 8

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            WindowDataset(np.arange(3.0), context_length=3, horizon=2)

    def test_rejects_2d_series(self):
        with pytest.raises(ValueError):
            WindowDataset(np.ones((4, 2)), context_length=2, horizon=1)

    def test_batch_matches_getitem_single_series(self):
        ds = WindowDataset(np.arange(30.0), context_length=4, horizon=3, stride=2)
        indices = np.array([5, 0, 3, 5])  # out of order, with a repeat
        contexts, horizons, starts = ds.batch(indices)
        assert contexts.flags["C_CONTIGUOUS"] and horizons.flags["C_CONTIGUOUS"]
        for row, i in enumerate(indices):
            w = ds[int(i)]
            np.testing.assert_array_equal(contexts[row], w.context)
            np.testing.assert_array_equal(horizons[row], w.horizon)
            assert starts[row] == w.start

    def test_batch_matches_getitem_multi_series_with_offsets(self):
        rng = np.random.default_rng(3)
        ds = WindowDataset(
            [rng.normal(size=15), rng.normal(size=11), rng.normal(size=20)],
            context_length=3,
            horizon=2,
            start_offsets=[0, 7, 19],
        )
        indices = rng.permutation(len(ds))
        contexts, horizons, starts = ds.batch(indices)
        for row, i in enumerate(indices):
            w = ds[int(i)]
            np.testing.assert_array_equal(contexts[row], w.context)
            np.testing.assert_array_equal(horizons[row], w.horizon)
            assert starts[row] == w.start

    def test_batch_rows_are_writable_copies(self):
        base = np.arange(12.0)
        ds = WindowDataset(base, context_length=3, horizon=1)
        contexts, _, _ = ds.batch(np.array([0, 1]))
        contexts[0, 0] = -99.0  # must not write through to the series
        assert base[0] == 0.0


class TestDataLoader:
    def test_batches_cover_everything(self):
        ds = WindowDataset(np.arange(20.0), context_length=3, horizon=1)
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        total = sum(len(ctx) for ctx, _ in loader)
        assert total == len(ds)

    def test_batch_shapes(self):
        ds = WindowDataset(np.arange(20.0), context_length=3, horizon=2)
        ctx, hor = next(iter(DataLoader(ds, batch_size=5, shuffle=False)))
        assert ctx.shape == (5, 3)
        assert hor.shape == (5, 2)

    def test_shuffle_reproducible_with_seed(self):
        ds = WindowDataset(np.arange(30.0), context_length=3, horizon=1)
        a = [c.copy() for c, _ in DataLoader(ds, 4, rng=np.random.default_rng(5))]
        b = [c.copy() for c, _ in DataLoader(ds, 4, rng=np.random.default_rng(5))]
        for left, right in zip(a, b):
            np.testing.assert_array_equal(left, right)

    def test_drop_last(self):
        ds = WindowDataset(np.arange(13.0), context_length=3, horizon=1)  # 10 windows
        loader = DataLoader(ds, batch_size=4, shuffle=False, drop_last=True)
        assert len(loader) == 2
        assert sum(1 for _ in loader) == 2


class TestSplitAndSerialization:
    def test_chronological_split(self):
        train, val = train_validation_split(np.arange(10.0), 0.3)
        np.testing.assert_array_equal(train, np.arange(7.0))
        np.testing.assert_array_equal(val, np.arange(7.0, 10.0))

    def test_split_rejects_degenerate(self):
        with pytest.raises(ValueError):
            train_validation_split(np.arange(10.0), 0.0)
        with pytest.raises(ValueError):
            train_validation_split(np.array([1.0]), 0.5)

    def test_state_roundtrip(self, tmp_path):
        state = {"a.b": np.arange(3.0), "c": np.eye(2)}
        save_state(state, tmp_path / "weights.npz")
        loaded = load_state(tmp_path / "weights.npz")
        assert set(loaded) == {"a.b", "c"}
        np.testing.assert_array_equal(loaded["a.b"], state["a.b"])

    def test_module_roundtrip(self, tmp_path):
        rng = np.random.default_rng(1)
        src = Linear(3, 2, rng)
        save_module(src, tmp_path / "linear.npz")
        dst = load_module(Linear(3, 2, np.random.default_rng(2)), tmp_path / "linear.npz")
        np.testing.assert_array_equal(src.weight.data, dst.weight.data)
        np.testing.assert_array_equal(src.bias.data, dst.bias.data)


class TestLosses:
    def test_mse_loss_value(self):
        loss = F.mse_loss(Tensor(np.array([1.0, 3.0])), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_gaussian_nll_minimised_at_truth(self):
        target = np.array([2.0])
        at_truth = F.gaussian_nll(Tensor([2.0]), Tensor([1.0]), target).item()
        off = F.gaussian_nll(Tensor([4.0]), Tensor([1.0]), target).item()
        assert at_truth < off

    def test_gaussian_nll_matches_scipy(self):
        from scipy import stats

        value = F.gaussian_nll(Tensor([1.0]), Tensor([2.0]), np.array([0.5])).item()
        expected = -stats.norm.logpdf(0.5, loc=1.0, scale=2.0)
        assert value == pytest.approx(expected, rel=1e-9)

    def test_student_t_nll_matches_scipy(self):
        from scipy import stats

        value = F.student_t_nll(
            Tensor([1.0]), Tensor([2.0]), Tensor([5.0]), np.array([0.5])
        ).item()
        expected = -stats.t.logpdf(0.5, df=5.0, loc=1.0, scale=2.0)
        assert value == pytest.approx(expected, rel=1e-5)

    def test_student_t_nll_gradients_finite(self):
        mean = Tensor(np.array([0.0]), requires_grad=True)
        scale = Tensor(np.array([1.0]), requires_grad=True)
        df = Tensor(np.array([3.0]), requires_grad=True)
        F.student_t_nll(mean, scale, df, np.array([10.0])).backward()
        for t in (mean, scale, df):
            assert np.all(np.isfinite(t.grad))

    def test_pinball_asymmetry(self):
        # Underestimation is penalised more at high quantiles.
        under = F.pinball(Tensor([0.0]), np.array([1.0]), tau=0.9).sum().item()
        over = F.pinball(Tensor([2.0]), np.array([1.0]), tau=0.9).sum().item()
        assert under == pytest.approx(0.9)
        assert over == pytest.approx(0.1)

    def test_pinball_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            F.pinball(Tensor([0.0]), np.array([1.0]), tau=1.0)

    def test_quantile_loss_sums_levels(self):
        preds = Tensor(np.zeros((4, 3)))
        target = np.ones(4)
        total = F.quantile_loss(preds, target, [0.1, 0.5, 0.9]).item()
        assert total == pytest.approx(0.1 + 0.5 + 0.9)

    def test_median_pinball_is_half_mae(self):
        rng = np.random.default_rng(0)
        pred, target = rng.normal(size=10), rng.normal(size=10)
        pin = F.pinball(Tensor(pred), target, tau=0.5).mean().item()
        mae = F.mae_loss(Tensor(pred), target).item()
        assert pin == pytest.approx(0.5 * mae)
