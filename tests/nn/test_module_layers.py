"""Tests for Module registration, Linear/Dropout/LayerNorm/Embedding/GRN."""

import numpy as np
import pytest

from repro.nn import (
    Dropout,
    Embedding,
    GatedLinearUnit,
    GatedResidualNetwork,
    LayerNorm,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
)


def rng():
    return np.random.default_rng(11)


class TestModule:
    def test_parameter_registration(self):
        class Toy(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))
                self.inner = Linear(2, 2, rng())

        toy = Toy()
        names = dict(toy.named_parameters())
        assert "w" in names
        assert "inner.weight" in names
        assert "inner.bias" in names

    def test_num_parameters(self):
        layer = Linear(3, 4, rng())
        assert layer.num_parameters() == 3 * 4 + 4

    def test_train_eval_propagates(self):
        seq = Sequential(Linear(2, 2, rng()), Dropout(0.5))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_zero_grad_clears_all(self):
        layer = Linear(2, 2, rng())
        out = layer(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self):
        src = Linear(3, 2, rng())
        dst = Linear(3, 2, np.random.default_rng(99))
        dst.load_state_dict(src.state_dict())
        np.testing.assert_array_equal(src.weight.data, dst.weight.data)

    def test_load_state_dict_rejects_mismatch(self):
        layer = Linear(3, 2, rng())
        with pytest.raises(KeyError):
            layer.load_state_dict({"weight": np.zeros((3, 2))})  # missing bias

    def test_load_state_dict_rejects_bad_shape(self):
        layer = Linear(3, 2, rng())
        state = layer.state_dict()
        state["weight"] = np.zeros((2, 3))
        with pytest.raises(ValueError):
            layer.load_state_dict(state)


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3, rng())
        assert layer(Tensor(np.ones((7, 5)))).shape == (7, 3)

    def test_forward_matches_manual(self):
        layer = Linear(2, 2, rng())
        x = np.array([[1.0, 2.0]])
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self):
        layer = Linear(2, 2, rng(), bias=False)
        assert layer.bias is None
        assert layer.num_parameters() == 4

    def test_gradients_flow(self):
        layer = Linear(3, 1, rng())
        loss = (layer(Tensor(np.ones((4, 3)))) ** 2).sum()
        loss.backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == (3, 1)

    def test_3d_input(self):
        layer = Linear(4, 2, rng())
        assert layer(Tensor(np.ones((2, 5, 4)))).shape == (2, 5, 2)


class TestDropout:
    def test_eval_is_identity(self):
        drop = Dropout(0.9)
        drop.eval()
        x = np.ones((10, 10))
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_training_scales_kept_units(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones((1000,)))).data
        kept = out[out > 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 300 < kept.size < 700  # ~50% kept

    def test_zero_probability_identity_in_training(self):
        drop = Dropout(0.0)
        x = np.ones(5)
        np.testing.assert_array_equal(drop(Tensor(x)).data, x)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestLayerNorm:
    def test_output_standardized(self):
        norm = LayerNorm(8)
        out = norm(Tensor(np.random.default_rng(3).normal(2.0, 5.0, size=(4, 8)))).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-8)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-3)

    def test_gamma_beta_trainable(self):
        norm = LayerNorm(4)
        norm(Tensor(np.random.default_rng(1).normal(size=(2, 4)))).sum().backward()
        assert norm.gamma.grad is not None
        assert norm.beta.grad is not None

    def test_constant_input_stable(self):
        norm = LayerNorm(4)
        out = norm(Tensor(np.full((1, 4), 3.0)))
        assert np.all(np.isfinite(out.data))


class TestEmbedding:
    def test_lookup_shape(self):
        emb = Embedding(10, 4, rng())
        assert emb(np.array([1, 5, 5])).shape == (3, 4)

    def test_gradient_accumulates_on_repeats(self):
        emb = Embedding(4, 2, rng())
        emb(np.array([1, 1, 2])).sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_out_of_range_raises(self):
        emb = Embedding(4, 2, rng())
        with pytest.raises(IndexError):
            emb(np.array([4]))


class TestSequentialAndGRN:
    def test_sequential_chains(self):
        seq = Sequential(Linear(3, 5, rng()), Linear(5, 2, rng()))
        assert seq(Tensor(np.ones((1, 3)))).shape == (1, 2)
        assert len(seq) == 2

    def test_glu_bounded_by_value_branch(self):
        glu = GatedLinearUnit(3, 3, rng())
        x = Tensor(np.random.default_rng(5).normal(size=(10, 3)))
        out = glu(x).data
        value = glu.value(x).data
        assert np.all(np.abs(out) <= np.abs(value) + 1e-12)

    def test_grn_shape_with_projection(self):
        grn = GatedResidualNetwork(6, 8, 4, rng())
        assert grn(Tensor(np.ones((2, 6)))).shape == (2, 4)
        assert grn.skip is not None

    def test_grn_shape_without_projection(self):
        grn = GatedResidualNetwork(4, 8, 4, rng())
        assert grn.skip is None
        assert grn(Tensor(np.ones((2, 4)))).shape == (2, 4)

    def test_grn_gradients_reach_all_parameters(self):
        grn = GatedResidualNetwork(3, 4, 3, rng())
        grn(Tensor(np.random.default_rng(2).normal(size=(5, 3)))).sum().backward()
        for name, param in grn.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
