"""Parity and dispatch tests for the tape-free inference fast path.

Every fast kernel must be *bitwise* identical to the Tensor tape path —
not merely close — because the DeepAR sampler feeds its own outputs
back in autoregressively, so any ULP difference compounds across the
horizon and changes the drawn trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.forecast import DeepARForecaster, TrainingConfig
from repro.nn import LSTM, Linear, Tensor, fastpath, no_grad
from repro.nn.rnn import LSTMCell

RNG = np.random.default_rng(42)


def _random(shape):
    return RNG.normal(size=shape)


# ---------------------------------------------------------------------------
# Dispatch
# ---------------------------------------------------------------------------
def test_fast_path_requires_no_grad():
    assert not fastpath.should_use_fast_path()  # grad enabled by default
    with no_grad():
        assert fastpath.should_use_fast_path()


def test_use_fast_path_pins_the_tape_path():
    with no_grad():
        with fastpath.use_fast_path(False):
            assert not fastpath.should_use_fast_path()
        assert fastpath.should_use_fast_path()


def test_linear_dispatches_to_fast_path_under_no_grad():
    layer = Linear(4, 3, np.random.default_rng(0))
    x = _random((5, 4))
    with no_grad():
        out = layer(Tensor(x))
    assert out.data.shape == (5, 3)
    assert np.array_equal(out.data, layer.fast_forward(x))


# ---------------------------------------------------------------------------
# Elementwise kernels
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("name", ["sigmoid", "tanh", "relu", "softplus"])
def test_activation_parity_bitwise(name):
    x = np.concatenate(
        [_random(1000) * 10, [0.0, -0.0, 1e-300, -1e-300, 600.0, -600.0, np.inf, -np.inf]]
    )
    with np.errstate(invalid="ignore"):  # relu(-inf) multiplies 0 * -inf
        fast = getattr(fastpath, name)(x)
        tape = getattr(Tensor(x), name)().data
    # equal_nan: both paths produce NaN for relu(-inf) (0 * -inf).
    assert np.array_equal(fast, tape, equal_nan=True)


def test_sigmoid_extreme_values_match_tape():
    # The fast sigmoid uses a branch-free max trick; the clip boundary
    # (±500) and saturation region must agree with the tape op exactly.
    x = np.array([-1000.0, -500.0, -499.999, 499.999, 500.0, 1000.0])
    assert np.array_equal(fastpath.sigmoid(x), Tensor(x).sigmoid().data)


# ---------------------------------------------------------------------------
# LSTM kernels
# ---------------------------------------------------------------------------
def _tape_cell_step(cell, x, h, c):
    with no_grad(), fastpath.use_fast_path(False):
        h_new, c_new = cell(Tensor(x), (Tensor(h), Tensor(c)))
    return h_new.data, c_new.data


def test_lstm_cell_forward_matches_tape_bitwise():
    cell = LSTMCell(5, 16, np.random.default_rng(1))
    x, h, c = _random((7, 5)), _random((7, 16)), _random((7, 16))
    fast_h, fast_c = cell.fast_forward(x, h, c)
    tape_h, tape_c = _tape_cell_step(cell, x, h, c)
    assert np.array_equal(fast_h, tape_h)
    assert np.array_equal(fast_c, tape_c)


def test_lstm_cell_permuted_matches_tape_bitwise():
    hs = 16
    cell = LSTMCell(5, hs, np.random.default_rng(2))
    params = [(cell.w_ih.data, cell.w_hh.data, cell.bias.data)]
    (w_ih, w_hh, bias), = fastpath.prepare_lstm_params(params, hs)
    x, h, c = _random((9, 5)), _random((9, hs)), _random((9, hs))
    fast_h, fast_c = fastpath.lstm_cell_permuted(x, h, c, w_ih, w_hh, bias, hs)
    tape_h, tape_c = _tape_cell_step(cell, x, h, c)
    assert np.array_equal(fast_h, tape_h)
    assert np.array_equal(fast_c, tape_c)


def test_multilayer_lstm_forward_matches_tape_bitwise():
    lstm = LSTM(5, 12, np.random.default_rng(3), num_layers=2)
    x = _random((4, 20, 5))
    fast_seq, fast_state = lstm.fast_forward(x)
    with no_grad(), fastpath.use_fast_path(False):
        tape_seq, tape_state = lstm(Tensor(x))
    assert np.array_equal(fast_seq, tape_seq.data)
    for (fh, fc), (th, tc) in zip(fast_state, tape_state):
        assert np.array_equal(fh, th.data)
        assert np.array_equal(fc, tc.data)


def test_lstm_step_continues_a_forward_state():
    lstm = LSTM(5, 12, np.random.default_rng(4), num_layers=2)
    x = _random((4, 21, 5))
    full_seq, _ = lstm.fast_forward(x)
    _, state = lstm.fast_forward(x[:, :20, :])
    top, _ = lstm.fast_step(x[:, 20, :], state)
    assert np.array_equal(top, full_seq[:, 20, :])


# ---------------------------------------------------------------------------
# DeepAR end-to-end
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def deepar():
    rng = np.random.default_rng(0)
    series = 100 + 20 * np.sin(np.arange(500) * 2 * np.pi / 144) + rng.normal(0, 3, 500)
    return (
        DeepARForecaster(
            36, 24, hidden_size=8, num_layers=2, num_samples=30,
            config=TrainingConfig(epochs=1, seed=0),
        ).fit(series),
        series,
    )


def test_deepar_heads_match_tape(deepar):
    forecaster, _ = deepar
    net = forecaster.network
    hidden = _random((6, forecaster.hidden_size))
    mu, scale, df = net._heads(hidden)
    with no_grad(), fastpath.use_fast_path(False):
        top = Tensor(hidden)
        tape_mu = net.mu_head(top)[..., 0].data
        tape_scale = (net.scale_head(top)[..., 0].softplus() + 1e-4).data
        tape_df = (net.df_head(top)[..., 0].softplus() + 2.0).data
    assert np.array_equal(mu, tape_mu)
    assert np.array_equal(scale, tape_scale)
    assert np.array_equal(df, tape_df)


def test_sample_paths_fast_vs_tape_identical(deepar):
    forecaster, series = deepar
    context = series[-36:]
    forecaster.reseed_sampler(99)
    fast = forecaster.sample_paths(context, start_index=464).samples
    forecaster.reseed_sampler(99)
    with fastpath.use_fast_path(False):
        tape = forecaster.sample_paths(context, start_index=464).samples
    assert fast.shape == (30, 24)
    assert np.array_equal(fast, tape)


def test_predict_quantiles_fast_vs_tape_identical(deepar):
    forecaster, series = deepar
    context = series[-36:]
    forecaster.reseed_sampler(7)
    fast = forecaster.predict(context, levels=(0.1, 0.5, 0.9), start_index=464)
    forecaster.reseed_sampler(7)
    with fastpath.use_fast_path(False):
        tape = forecaster.predict(context, levels=(0.1, 0.5, 0.9), start_index=464)
    assert np.array_equal(fast.values, tape.values)
    assert np.array_equal(fast.point, tape.point)
