"""Acceptance: one live daemon, a regime shift, and the whole obs stack.

A single in-process daemon serves a synthetic workload that triples
mid-stream while its planner stays pinned at one node — a sustained QoS
breach.  Against that one live process we require:

* the SLO burn-rate alert shows up in ``GET /health`` and in the
  telemetry JSONL;
* the Prometheus exposition scrapes and parses;
* ``GET /traces`` returns spans that render as a timeline;
* the ``top`` dashboard renders a frame showing the breach.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.obs import (
    AlertEngine,
    JsonlSink,
    MetricsRegistry,
    ModelHealthMonitor,
    SLOTracker,
    TraceCollector,
    parse_exposition,
    render_trace_timeline,
    set_registry,
)
from repro.service import GeneratorSource, ServiceRuntime, run_dashboard

QUIET, SHIFTED = 30.0, 300.0
SERIES = [QUIET] * 30 + [SHIFTED] * 50
THRESHOLD = 60.0


class PinnedPlanner:
    """Forecasts the quiet regime forever: one node, no matter what."""

    name = "pinned"

    def __init__(self, horizon):
        self.horizon = horizon

    def plan(self, context, start_index=0):
        return ScalingPlan(
            nodes=np.ones(self.horizon, dtype=np.int64),
            threshold=THRESHOLD,
            strategy=self.name,
            metadata={
                "forecast_levels": np.array([0.1, 0.5, 0.9]),
                "forecast_values": np.vstack(
                    [np.full(self.horizon, QUIET * f) for f in (0.8, 1.0, 1.2)]
                ),
            },
        )


def request(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def request_raw(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


@pytest.fixture(scope="module")
def burned(tmp_path_factory):
    """The daemon after draining the shifted series, still serving."""
    telemetry = tmp_path_factory.mktemp("slo-e2e") / "telemetry.jsonl"
    registry = MetricsRegistry(sinks=[JsonlSink(telemetry)])
    previous = set_registry(registry)
    engine = AlertEngine()
    slos = SLOTracker(["qos_violation_rate < 0.05 over 24"], engine=engine)
    runtime = AutoscalingRuntime(
        planner=PinnedPlanner(8), context_length=6, horizon=8,
        threshold=THRESHOLD,
        monitor=ModelHealthMonitor(window=4, alerts=engine, slos=slos),
    )
    service = ServiceRuntime(
        runtime, GeneratorSource(SERIES),
        tracer=TraceCollector(max_traces=32),
        linger=60.0,
    )
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    try:
        deadline = time.monotonic() + 20
        while service.port is None or service.ticks_processed < len(SERIES):
            if time.monotonic() > deadline:
                raise TimeoutError("daemon never drained the series")
            time.sleep(0.02)
        yield service, telemetry
    finally:
        service.request_stop()
        thread.join(timeout=10)
        set_registry(previous)


class TestSloBurn:
    def test_health_shows_the_breach(self, burned):
        service, _ = burned
        status, health = request(service.port, "/health")
        assert status == 200
        (entry,) = health["slo"]
        assert entry["objective"] == "qos_violation_rate < 0.05 over 24"
        assert entry["healthy"] is False
        critical = entry["burn"]["critical"]
        assert critical["long_burn"] >= 14.4
        assert health["alerts_fired"] >= 1

    def test_burn_alert_and_slo_events_reach_the_jsonl(self, burned):
        _, telemetry = burned
        records = [
            json.loads(line)
            for line in telemetry.read_text().splitlines()
            if line.strip()
        ]
        alerts = [r for r in records if r.get("kind") == "alert"]
        assert any(r["name"].startswith("slo-burn:") for r in alerts)
        slo_events = [r for r in records if r.get("kind") == "slo"]
        assert slo_events
        assert any(r.get("budget_consumed", 0) > 1.0 for r in slo_events)

    def test_decisions_stayed_pinned(self, burned):
        # The breach is real: capacity never followed the workload.
        service, _ = burned
        _, payload = request(service.port, "/decisions?limit=5")
        assert all(
            d["nodes_first"] == 1
            for d in payload["decisions"]
            if d["source"] == "predictive"
        )


class TestScrapeAndTraces:
    def test_prometheus_scrape_parses(self, burned):
        service, _ = burned
        status, ctype, text = request_raw(
            service.port, "/metrics?format=prometheus"
        )
        assert status == 200
        assert "version=0.0.4" in ctype
        families = parse_exposition(text)
        assert "repro_slo_budget_consumed" in families
        assert "repro_span_duration_seconds" in families

    def test_traces_render_as_timelines(self, burned):
        service, _ = burned
        status, payload = request(service.port, "/traces?limit=2")
        assert status == 200
        assert payload["tracing"] is True
        timeline = render_trace_timeline(payload["traces"][-1])
        assert "runtime.step" in timeline
        assert "|" in timeline and "#" in timeline


class TestTopAgainstLiveDaemon:
    def test_one_shot_dashboard_shows_the_breach(self, burned, capsys):
        service, _ = burned
        assert run_dashboard("127.0.0.1", service.port, once=True) == 0
        out = capsys.readouterr().out
        assert "repro-autoscale top" in out
        assert "FIRING" in out
        assert "workload vs capacity" in out
