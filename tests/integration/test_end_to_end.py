"""Integration tests: full pipelines across packages.

These use small models and short traces; the benchmark harness runs the
paper-scale versions.
"""

import numpy as np
import pytest

from repro import (
    FixedQuantilePolicy,
    MLPForecaster,
    PaddedPointForecaster,
    PointForecastScaler,
    ReactiveAvgScaler,
    RobustPredictiveAutoscaler,
    SeasonalNaiveForecaster,
    TFTForecaster,
    TrainingConfig,
    UncertaintyAwarePolicy,
    alibaba_like_trace,
    evaluate_strategy,
)
from repro.core import decision_points, solve_with_ramp_limits
from repro.forecast import LinearRegressionForecaster
from repro.simulator import SharedStorage, replay_plan

CTX = HOR = 36
THETA = 60.0


@pytest.fixture(scope="module")
def trace_splits():
    trace = alibaba_like_trace(num_steps=144 * 8, seed=11)
    train, test = trace.split(test_fraction=0.25)
    return train, test


@pytest.fixture(scope="module")
def tft(trace_splits):
    train, _ = trace_splits
    config = TrainingConfig(epochs=6, batch_size=64, window_stride=4, patience=0, seed=1)
    return TFTForecaster(CTX, HOR, d_model=16, num_heads=2, config=config).fit(
        train.values
    )


class TestForecastToPlanToReplay:
    def test_full_pipeline(self, trace_splits, tft):
        train, test = trace_splits
        scaler = RobustPredictiveAutoscaler(tft, THETA, FixedQuantilePolicy(0.9))
        plan = scaler.plan(test.values[:CTX], start_index=len(train.values))
        result = replay_plan(plan, test.values[CTX : CTX + HOR])
        # Warm-up at 10-minute intervals cannot dominate: any violations
        # must come from forecast error, which the robust plan bounds.
        assert result.violation_rate < 0.5
        assert result.total_node_seconds > 0

    def test_rolling_evaluation_quantile_ordering(self, trace_splits, tft):
        train, test = trace_splits
        under = {}
        for tau in (0.5, 0.9):
            scaler = RobustPredictiveAutoscaler(tft, THETA, FixedQuantilePolicy(tau))
            ev = evaluate_strategy(
                scaler, test.values, CTX, HOR, THETA,
                series_start_index=len(train.values),
            )
            under[tau] = ev.report.under_provisioning_rate
        assert under[0.9] <= under[0.5]

    def test_adaptive_policy_runs_end_to_end(self, trace_splits, tft):
        train, test = trace_splits
        scaler = RobustPredictiveAutoscaler(
            tft, THETA, UncertaintyAwarePolicy(0.6, 0.9, uncertainty_threshold=100.0)
        )
        ev = evaluate_strategy(
            scaler, test.values, CTX, HOR, THETA,
            series_start_index=len(train.values),
        )
        # Both levels should appear somewhere across the evaluation.
        plan = scaler.plan(test.values[:CTX], start_index=len(train.values))
        assert set(np.unique(plan.quantile_levels)) <= {0.6, 0.9}
        assert 0.0 <= ev.report.under_provisioning_rate <= 1.0


class TestPaddingFeedbackLoop:
    def test_padding_reduces_underprovisioning(self, trace_splits):
        """The CloudScale enhancement must help a biased forecaster."""
        train, test = trace_splits

        class LowBall(LinearRegressionForecaster):
            """Deliberately under-forecasts by 10%."""

            def predict_point(self, context, start_index=0):
                return super().predict_point(context, start_index) * 0.9

        plain = LowBall(CTX, HOR).fit(train.values)
        padded_base = LowBall(CTX, HOR).fit(train.values)
        padded = PaddedPointForecaster(padded_base, window=HOR * 3, percentile=0.95)
        padded._fitted = True

        plain_scaler = PointForecastScaler(plain, THETA, name="plain")
        padded_scaler = PointForecastScaler(padded, THETA, name="padded")

        def feedback(point, plan, actual):
            padded.observe(actual, plan.metadata["point_forecast"] - padded.padding)

        plain_ev = evaluate_strategy(plain_scaler, test.values, CTX, HOR, THETA)
        padded_ev = evaluate_strategy(
            padded_scaler, test.values, CTX, HOR, THETA, on_window=feedback
        )
        assert (
            padded_ev.report.under_provisioning_rate
            < plain_ev.report.under_provisioning_rate
        )


class TestThrashingControl:
    def test_ramped_plan_replays_with_fewer_scale_events(self, trace_splits, tft):
        train, test = trace_splits
        free = RobustPredictiveAutoscaler(tft, THETA, FixedQuantilePolicy(0.9))
        ramped = RobustPredictiveAutoscaler(
            tft, THETA, FixedQuantilePolicy(0.9), max_scale_out=1, max_scale_in=1
        )
        context = test.values[:CTX]
        start = len(train.values)
        free_plan = free.plan(context, start_index=start)
        ramped_plan = ramped.plan(context, start_index=start)
        free_changes = int(np.abs(np.diff(free_plan.nodes)).sum())
        ramped_steps = np.abs(np.diff(ramped_plan.nodes))
        assert ramped_steps.max() <= 1
        # Ramping never under-allocates relative to demand bound
        assert np.all(ramped_plan.nodes >= free_plan.nodes)


class TestSerializationAcrossPackages:
    def test_save_load_forecaster_preserves_plans(self, trace_splits, tft, tmp_path):
        from repro.nn import load_module, save_module

        train, test = trace_splits
        save_module(tft.network, tmp_path / "tft.npz")

        clone = TFTForecaster(
            CTX, HOR, d_model=16, num_heads=2,
            config=TrainingConfig(epochs=1, batch_size=64, window_stride=48, patience=0, seed=1),
        )
        # Build network and scaler state without retraining to convergence.
        clone.fit(train.values[: CTX + HOR + 200])
        clone.scaler = tft.scaler
        load_module(clone.network, tmp_path / "tft.npz")

        context = test.values[:CTX]
        start = len(train.values)
        original = tft.predict(context, start_index=start)
        restored = clone.predict(context, start_index=start)
        np.testing.assert_allclose(original.values, restored.values, rtol=1e-10)


class TestReactiveVersusOracleSpan:
    def test_all_strategies_comparable(self, trace_splits):
        """Reactive and naive-predictive strategies score over the same steps."""
        train, test = trace_splits
        naive = SeasonalNaiveForecaster(horizon=HOR, season=144).fit(train.values)
        predictive = RobustPredictiveAutoscaler(
            naive, THETA, FixedQuantilePolicy(0.9),
            quantile_levels=(0.1, 0.5, 0.9),
        )
        reactive = ReactiveAvgScaler()
        ev_p = evaluate_strategy(
            predictive, test.values, 144, HOR, THETA,
            series_start_index=len(train.values),
        )
        ev_r = evaluate_strategy(reactive, test.values, 144, HOR, THETA)
        assert len(ev_p.actual) == len(ev_r.actual)
