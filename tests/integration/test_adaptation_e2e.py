"""Acceptance test for the drift→adaptation loop (ISSUE: close the loop).

A real MLP forecaster is trained on a synthetic seasonal workload, then
served against a regime-shifted continuation.  With an AdaptationManager
attached, the loop must — with no human input — detect drift, warm-refit
a candidate, shadow it, promote it, and commit it; the promoted model's
rolling wQL must beat the stale incumbent's over the post-shift tail.
A checkpoint taken mid-shadow must restore bit-identically, an injected
bad candidate must be rolled back by the guard, and a warm-started refit
must converge in no more than half the epochs of a cold fit on the
shifted trace.

The seasonal-naive family cannot drive this scenario: it forecasts from
its recent *context*, so it self-adapts to any level shift and its
residuals never drift.  A trained model with frozen weights (the MLP)
is what goes stale — exactly the paper's online-staleness story.
"""

import copy
import json

import numpy as np
import pytest

from repro.adaptation import (
    IDLE,
    SHADOWING,
    AdaptationManager,
    PromotionPolicy,
)
from repro.core import AutoscalingRuntime
from repro.core.autoscaler import RobustPredictiveAutoscaler
from repro.forecast.mlp import MLPForecaster
from repro.forecast.neural import TrainingConfig
from repro.obs import AlertEngine, ModelHealthMonitor, parse_rule
from repro.service import restore_from_checkpoint, save_checkpoint

from tests.adaptation.doubles import BadForecaster, drive, make_runtime
from tests.adaptation.doubles import FakeForecaster

CTX, HOR, SEASON = 36, 12, 24
TRAIN_STEPS = 400
STREAM_STEPS = 240
THRESHOLD = 100.0
CHECKPOINT_SHADOW_TICKS = 12


def seasonal(t, level, amplitude):
    return level + amplitude * (1.0 + np.sin(2.0 * np.pi * t / SEASON))


def make_traces():
    """Training regime and a strongly shifted serving continuation."""
    rng = np.random.default_rng(42)
    train = seasonal(np.arange(TRAIN_STEPS), 40.0, 30.0) + rng.normal(
        0, 2, TRAIN_STEPS
    )
    stream_t = np.arange(TRAIN_STEPS, TRAIN_STEPS + STREAM_STEPS)
    stream = seasonal(stream_t, 140.0, 90.0) + rng.normal(0, 2, STREAM_STEPS)
    return train, stream


def build_loop(forecaster, train):
    """Runtime + manager wired exactly like ``serve --adapt`` does."""
    planner = RobustPredictiveAutoscaler(forecaster, threshold=THRESHOLD)
    monitor = ModelHealthMonitor(
        window=24, alerts=AlertEngine([parse_rule("drift_events > 0")])
    )
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=CTX,
        horizon=HOR,
        threshold=THRESHOLD,
        replan_every=HOR,
        start_tick=TRAIN_STEPS,
        monitor=monitor,
        record_provenance=True,
    )
    manager = AdaptationManager(
        runtime,
        policy=PromotionPolicy(
            wql_ratio=0.95,
            calibration_slack=0.5,
            soak_windows=2,
            guard_windows=2,
        ),
        shadow_window=200,
        cooldown=24,
    )
    for value in train[-CTX:]:
        runtime._history.append(float(value))
        manager.history.append(float(value))
    return runtime, manager, planner


@pytest.fixture(scope="module")
def base_forecaster():
    train, _ = make_traces()
    config = TrainingConfig(epochs=30, seed=0, patience=4)
    model = MLPForecaster(CTX, HOR, hidden_size=32, config=config)
    model.fit(train, start_index=0)
    return model


@pytest.fixture(scope="module")
def adapted(base_forecaster, tmp_path_factory):
    """One full uninterrupted run, checkpointed mid-shadow on the side."""
    train, stream = make_traces()
    runtime, manager, planner = build_loop(
        copy.deepcopy(base_forecaster), train
    )
    checkpoint_dir = tmp_path_factory.mktemp("adaptation") / "ckpt"
    checkpoint_position = None
    results = []
    for position, value in enumerate(stream):
        result = runtime.step(float(value))
        manager.on_tick(result.tick, result.observed, result.planned)
        results.append(result)
        if (
            checkpoint_position is None
            and manager.state == SHADOWING
            and manager.status()["shadow_ticks"] == CHECKPOINT_SHADOW_TICKS
        ):
            save_checkpoint(
                checkpoint_dir,
                runtime=runtime,
                planner=planner,
                config={},
                source_position=position + 1,
                adaptation=manager,
            )
            checkpoint_position = position + 1
    return {
        "train": train,
        "stream": stream,
        "runtime": runtime,
        "manager": manager,
        "results": results,
        "checkpoint_dir": checkpoint_dir,
        "checkpoint_position": checkpoint_position,
    }


class TestDriftToPromotion:
    def test_alert_triggers_warm_refit_without_human_input(self, adapted):
        manager = adapted["manager"]
        refits = [e for e in manager.events if e["action"] == "refit"]
        assert refits, "the drift alert must trigger a refit"
        assert refits[0]["reason"].startswith("alert: drift_events")
        assert refits[0]["strategy"] == "warm"
        assert refits[0]["mode"] == "warm"

    def test_candidate_promoted_and_committed(self, adapted):
        manager = adapted["manager"]
        actions = [e["action"] for e in manager.events]
        assert "promote" in actions
        assert "commit" in actions
        assert manager.promotions >= 1
        assert manager.rollbacks == 0
        assert manager.state == IDLE

    def test_promoted_model_is_a_warm_refit_of_the_incumbent(self, adapted):
        live = adapted["runtime"].planner.forecaster
        assert live.fits_completed == 2
        modes = {record["mode"] for record in live.history}
        assert modes == {"cold", "warm"}

    def test_promoted_model_beats_stale_incumbent_rolling_wql(self, adapted):
        manager, runtime = adapted["manager"], adapted["runtime"]
        promote_tick = [
            e for e in manager.events if e["action"] == "promote"
        ][0]["tick"]
        windows = runtime.monitor.windows
        stale = [w.mean_wql for w in windows if w.end_index <= promote_tick]
        promoted = [
            w.mean_wql for w in windows if w.start_index > promote_tick
        ]
        assert stale and promoted
        assert np.mean(promoted) < 0.9 * np.mean(stale)

    def test_promotion_recorded_in_provenance(self, adapted):
        provenance = adapted["runtime"].provenance
        promoted = [r for r in provenance if r["source"] == "promoted"]
        assert len(promoted) == 1
        assert promoted[0]["mode"] == "warm"
        assert promoted[0]["strategy"] == "MLPForecaster"


class TestCheckpointMidShadow:
    def test_restore_is_bit_identical(self, adapted, base_forecaster):
        assert adapted["checkpoint_position"] is not None
        train, stream = adapted["train"], adapted["stream"]
        runtime, manager, planner = build_loop(
            copy.deepcopy(base_forecaster), train
        )
        position = restore_from_checkpoint(
            adapted["checkpoint_dir"],
            runtime=runtime,
            planner=planner,
            adaptation=manager,
        )
        assert position == adapted["checkpoint_position"]
        assert manager.state == SHADOWING

        restored = []
        for value in stream[position:]:
            result = runtime.step(float(value))
            manager.on_tick(result.tick, result.observed, result.planned)
            restored.append(result)

        original_tail = adapted["results"][position:]
        assert [r.target_nodes for r in restored] == [
            r.target_nodes for r in original_tail
        ]
        assert [r.source for r in restored] == [
            r.source for r in original_tail
        ]
        # The whole adaptation state machine converged identically.
        # Model blobs are compared behaviorally below: a pickle of the
        # in-process model and a pickle of its unpickled twin can differ
        # in byte layout (array-sharing memoization) while encoding the
        # same weights.
        original_state = adapted["manager"].state_dict()
        restored_state = manager.state_dict()
        blob_keys = ("live_model", "candidate", "previous")
        strip = lambda s: {k: v for k, v in s.items() if k not in blob_keys}
        assert strip(restored_state) == strip(original_state)
        original_live = adapted["runtime"].planner.forecaster
        restored_live = runtime.planner.forecaster
        for key, value in original_live.network.state_dict().items():
            np.testing.assert_array_equal(
                value, restored_live.network.state_dict()[key]
            )
        context = stream[-CTX:]
        np.testing.assert_array_equal(
            original_live.predict(context, start_index=0).values,
            restored_live.predict(context, start_index=0).values,
        )
        # And the checkpoint itself is valid JSON end to end.
        json.dumps(original_state)


class TestRollback:
    def test_rollback_fires_on_injected_bad_candidate(self):
        # Deterministic doubles keep this fast; the guard semantics are
        # identical to the MLP path.  Promotion lands on a window
        # boundary so the first closing window judges only the bad
        # candidate, breaches, and rolls the swap back.
        runtime = make_runtime(
            FakeForecaster().fit(np.full(20, 100.0)),
            rules=("mean_wql > 0.5",),
            record_provenance=True,
        )
        manager = AdaptationManager(
            runtime,
            policy=PromotionPolicy(soak_windows=1, guard_windows=3),
            auto_refit=False,
            cooldown=5,
        )
        drive(runtime, manager, np.full(38, 100.0))
        incumbent = runtime.planner.forecaster
        manager.refit(reason="test")
        manager.candidate = BadForecaster()
        manager.promote(reason="inject bad candidate")
        drive(runtime, manager, np.full(15, 100.0))
        assert manager.rollbacks == 1
        assert runtime.planner.forecaster is incumbent
        rolled_back = [
            r for r in runtime.provenance if r["source"] == "rolled_back"
        ]
        assert len(rolled_back) == 1


class TestWarmStartConvergence:
    def test_warm_refit_halves_the_epochs_of_a_cold_fit(self):
        # A level shift that stays inside the scaler's fitted range:
        # the warm network only adjusts its output mapping, so early
        # stopping kicks in far sooner than training from scratch.
        rng = np.random.default_rng(42)
        train = seasonal(np.arange(TRAIN_STEPS), 40.0, 30.0) + rng.normal(
            0, 2, TRAIN_STEPS
        )
        shifted_t = np.arange(TRAIN_STEPS, TRAIN_STEPS + 360)
        shifted = seasonal(shifted_t, 55.0, 20.0) + rng.normal(0, 2, 360)

        config = TrainingConfig(epochs=60, seed=0, patience=4)
        base = MLPForecaster(CTX, HOR, hidden_size=32, config=config)
        base.fit(train, start_index=0)

        warm = copy.deepcopy(base)
        warm.fit(shifted, warm_start=True, start_index=TRAIN_STEPS)
        warm_epochs = len(
            [r for r in warm.history if r["mode"] == "warm"]
        )

        cold = MLPForecaster(CTX, HOR, hidden_size=32, config=config)
        cold.fit(shifted, start_index=TRAIN_STEPS)
        cold_epochs = len(cold.history)

        assert warm_epochs * 2 <= cold_epochs, (
            f"warm refit took {warm_epochs} epochs vs {cold_epochs} cold"
        )
