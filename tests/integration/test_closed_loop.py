"""Integration: AutoscalingRuntime driving the simulated cluster."""

import numpy as np
import pytest

from repro import (
    AutoscalingRuntime,
    FixedQuantilePolicy,
    RobustPredictiveAutoscaler,
    SeasonalNaiveForecaster,
)
from repro.core.plan import required_nodes
from repro.simulator import DisaggregatedCluster, SharedStorage, Simulation

SEASON = 48
THETA = 60.0


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(9)
    t = np.arange(SEASON * 16)
    return 900.0 + 400.0 * np.sin(2 * np.pi * t / SEASON) + rng.normal(0, 30, len(t))


@pytest.fixture(scope="module")
def runtime_and_series(series):
    train, test = series[: -SEASON * 6], series[-SEASON * 6 :]
    forecaster = SeasonalNaiveForecaster(horizon=SEASON, season=SEASON).fit(train)
    planner = RobustPredictiveAutoscaler(
        forecaster, THETA, FixedQuantilePolicy(0.9), quantile_levels=(0.5, 0.9)
    )
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=SEASON,
        horizon=SEASON,
        threshold=THETA,
        start_index=len(train),
    )
    return runtime, test


class TestClosedLoop:
    def test_cluster_follows_runtime(self, runtime_and_series):
        runtime, test = runtime_and_series
        simulation = Simulation()
        cluster = DisaggregatedCluster(
            simulation, SharedStorage(jitter_fraction=0.0), initial_nodes=1
        )
        violations = 0
        for workload in test:
            target = runtime.target_nodes()
            cluster.scale_to(target)
            start = simulation.now
            simulation.run(until=start + 600.0)
            serving = sum(
                node.serving_seconds(start, simulation.now) for node in cluster.nodes
            )
            if workload / max(serving / 600.0, 1e-9) > THETA:
                violations += 1
            runtime.observe(workload)

        # After the cold-start context fills, the 0.9-quantile policy keeps
        # violations well below the reactive-only level.
        assert violations / len(test) < 0.25
        assert cluster.scale_out_events > 0
        assert cluster.scale_in_events > 0
        assert runtime.decisions  # predictive planning actually engaged

    def test_runtime_allocation_tracks_demand(self, runtime_and_series):
        runtime, test = runtime_and_series
        allocations = runtime.run(test)
        needed = required_nodes(test, THETA)
        # Skip the cold-start window; after it, under-allocation is rare.
        live = slice(SEASON, None)
        under = (allocations[live] < needed[live]).mean()
        assert under < 0.3
