"""Acceptance test for fault injection + graceful degradation.

The ISSUE's bar: with planner-exception and telemetry-NaN faults
injected, ``AutoscalingRuntime.run()`` completes without raising, every
degraded interval is visible in the decision log and provenance with
``source="degraded"``, and two runs driven by the same fault-schedule
seed are bit-identical.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes
from repro.evaluation import chaos_run
from repro.faults import FaultSchedule, FlakyPlanner, corrupt_series


class OraclePlanner:
    """Plans exactly the workload it will be asked to serve."""

    name = "oracle"

    def __init__(self, series, horizon, threshold=60.0):
        self.series = np.asarray(series, dtype=float)
        self.horizon = horizon
        self.threshold = threshold

    def plan(self, context, start_index=0):
        future = self.series[start_index + len(context) :][: self.horizon]
        return ScalingPlan(
            nodes=required_nodes(future, self.threshold),
            threshold=self.threshold,
            strategy="oracle",
        )


SERIES = np.concatenate(
    [np.full(30, 300.0), np.full(30, 900.0), np.full(30, 500.0)]
)
FAULT_RATES = {"nan": 0.05, "drop": 0.03, "planner_error": 0.1}


def chaos_loop(seed):
    """One full faulted closed loop; returns everything observable."""
    faults = FaultSchedule.random(len(SERIES), FAULT_RATES, seed=seed)
    observed, _ = corrupt_series(SERIES, faults)
    runtime = AutoscalingRuntime(
        planner=FlakyPlanner(OraclePlanner(SERIES, 8), faults),
        context_length=6,
        horizon=8,
        threshold=60.0,
        invalid_policy="impute",
    )
    allocations = runtime.run(observed)
    return faults, runtime, allocations


class TestSurvival:
    def test_run_completes_under_nan_and_planner_faults(self):
        faults, runtime, allocations = chaos_loop(seed=3)
        # The schedule actually contained both fault families ...
        counts = faults.counts()
        assert counts.get("nan", 0) + counts.get("drop", 0) > 0
        assert counts.get("planner_error", 0) > 0
        # ... the loop hit them ...
        assert runtime.invalid_observations > 0
        assert runtime.planner_errors > 0
        # ... and still produced a full, valid allocation series.
        assert len(allocations) == len(SERIES)
        assert (allocations >= 1).all()

    def test_every_degraded_interval_is_accounted_for(self):
        _, runtime, _ = chaos_loop(seed=3)
        degraded = [d for d in runtime.decisions if d.source == "degraded"]
        assert degraded, "seed 3 must produce at least one degraded decision"
        # The per-interval counter equals the intervals the degraded
        # plans covered: nothing served degraded goes unrecorded.
        assert runtime.degraded_intervals == sum(
            len(d.plan.nodes) for d in degraded
        )

    def test_degraded_decisions_visible_in_provenance(self):
        faults = FaultSchedule.random(len(SERIES), FAULT_RATES, seed=3)
        observed, _ = corrupt_series(SERIES, faults)
        runtime = AutoscalingRuntime(
            planner=FlakyPlanner(OraclePlanner(SERIES, 8), faults),
            context_length=6,
            horizon=8,
            threshold=60.0,
            invalid_policy="impute",
            record_provenance=True,
        )
        runtime.run(observed)
        decisions = [d for d in runtime.decisions if d.source == "degraded"]
        records = [r for r in runtime.provenance if r["source"] == "degraded"]
        assert len(records) == len(decisions) > 0
        assert {r["time_index"] for r in records} == {
            d.time_index for d in decisions
        }
        assert all(r["error"] for r in records)


class TestDeterminism:
    def test_same_seed_is_bit_identical(self):
        faults_a, runtime_a, alloc_a = chaos_loop(seed=3)
        faults_b, runtime_b, alloc_b = chaos_loop(seed=3)
        assert faults_a == faults_b
        assert np.array_equal(alloc_a, alloc_b)
        assert [(d.time_index, d.source) for d in runtime_a.decisions] == [
            (d.time_index, d.source) for d in runtime_b.decisions
        ]

    def test_different_seed_differs(self):
        _, _, alloc_a = chaos_loop(seed=3)
        _, _, alloc_b = chaos_loop(seed=4)
        assert not np.array_equal(alloc_a, alloc_b)

    def test_chaos_run_reports_determinism(self):
        faults = FaultSchedule.random(len(SERIES), FAULT_RATES, seed=3)
        report = chaos_run(
            lambda: OraclePlanner(SERIES, 8),
            SERIES,
            context_length=6,
            horizon=8,
            threshold=60.0,
            faults=faults,
        )
        assert report.deterministic is True
        assert report.degraded_intervals > 0
        assert report.decisions_by_source.get("degraded", 0) > 0


class TestChaosCLI:
    ARGS = [
        "chaos", "--trace", "alibaba", "--days", "7", "--model", "naive",
        "--context", "144", "--horizon", "36", "--epochs", "1",
    ]

    def test_chaos_command_survives_and_reports(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos report" in out
        assert "degraded intervals" in out
        assert "bit-identical" in out

    def test_explicit_fault_spec(self, capsys):
        code = main(self.ARGS + ["--faults", "nan@5,planner_error@150"])
        assert code == 0
        out = capsys.readouterr().out
        assert "planner faults hit  : 2" in out  # 1 + 1 retry

    def test_evaluate_with_faults_flag(self, capsys):
        code = main([
            "evaluate", "--trace", "alibaba", "--days", "7", "--model",
            "naive", "--context", "144", "--horizon", "36", "--epochs", "1",
            "--faults", "nan@5,spike@20:8,planner_error@150,node_crash@30",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "invalid observations: 1" in out
        assert "1 crashes" in out
