"""Acceptance test for the model-health monitoring pipeline.

Runs the full closed loop through the CLI — forecaster, autoscaler,
runtime, monitor, telemetry — with a regime shift injected mid-trace,
then asserts the three observability artefacts the ISSUE demands:

(a) a windowed coverage series showing calibration degradation after
    the shift,
(b) at least one drift event timestamped inside the shifted region,
(c) a provenance record for every planning decision,

and (d) that ``repro.cli report`` renders all three from the JSONL
stream alone.
"""

import json

import pytest

from repro.cli import main

# 7 days of the alibaba-like trace -> 1008 steps, 756 train / 252 test.
# The shift starts 200 steps into the test split (absolute index 956)
# and lifts the workload far outside the seasonal-naive envelope.
TRAIN_STEPS = 756
SHIFT_OFFSET = 200
SHIFT_START = TRAIN_STEPS + SHIFT_OFFSET

EVALUATE_ARGS = [
    "evaluate", "--trace", "alibaba", "--days", "7", "--model", "naive",
    "--context", "144", "--horizon", "36", "--quantile", "0.9",
    "--monitor", "--monitor-window", "12",
    "--inject-shift", f"{SHIFT_OFFSET}:1500",
]


@pytest.fixture(scope="module")
def telemetry(tmp_path_factory):
    path = tmp_path_factory.mktemp("health") / "telemetry.jsonl"
    code = main(EVALUATE_ARGS + ["--telemetry", str(path)])
    assert code == 0
    records = [
        json.loads(line) for line in path.read_text().splitlines() if line.strip()
    ]
    return path, records


def by_name(records, name):
    return [r for r in records if r.get("name") == name]


class TestCoverageDegradation:
    def test_windowed_coverage_collapses_after_shift(self, telemetry):
        _, records = telemetry
        windows = by_name(records, "monitor.window")
        assert len(windows) >= 4
        before = [w for w in windows if w["end_index"] < SHIFT_START]
        after = [w for w in windows if w["start_index"] >= SHIFT_START]
        assert before and after, "need windows on both sides of the shift"
        cov = lambda ws: sum(w["coverage"]["0.9"] for w in ws) / len(ws)
        # A 1500-unit level shift blows straight past the q0.9 forecast:
        # coverage must collapse, not merely dip.
        assert cov(after) < cov(before) - 0.3
        assert cov(after) < 0.1


class TestDriftDetection:
    def test_drift_event_inside_shifted_region(self, telemetry):
        _, records = telemetry
        drifts = by_name(records, "monitor.drift")
        assert drifts, "regime shift must produce at least one drift event"
        assert all(d["kind"] == "model_health" for d in drifts)
        in_region = [d for d in drifts if d["time_index"] >= SHIFT_START]
        assert in_region
        # The workload jumps up, so the shifted region must contain an
        # upward drift signal (pre-shift events may exist too: the
        # seasonal-naive model is genuinely imperfect on this trace).
        assert any(d["direction"] == "up" for d in in_region)


class TestProvenanceCompleteness:
    def test_one_record_per_planning_decision(self, telemetry):
        _, records = telemetry
        provenance = by_name(records, "runtime.decision")
        assert provenance

        def counter_total(name, **labels):
            values = [
                r["value"] for r in records
                if r["kind"] == "counter" and r["name"] == name
                and (r.get("labels") or {}) == labels
            ]
            return max(values) if values else 0

        fallback = [p for p in provenance if p["source"] == "reactive-fallback"]
        predictive = [p for p in provenance if p["source"] == "predictive"]
        # Cross-check against the runtime's own counters: every fallback
        # activation and every predictive plan has exactly one record.
        assert len(fallback) == counter_total("runtime.fallback_activations")
        assert len(predictive) == counter_total(
            "runtime.decisions", source="predictive"
        )
        assert len(predictive) >= 1

    def test_predictive_records_carry_decision_inputs(self, telemetry):
        _, records = telemetry
        predictive = [
            p for p in by_name(records, "runtime.decision")
            if p["source"] == "predictive"
        ]
        for record in predictive:
            assert record["tau_max"] == 0.9
            assert record["bound_max"] > 0
            assert record["uncertainty_mean"] >= 0
            assert record["nodes"]
            assert record["nodes_first"] == record["nodes"][0]


class TestAlerts:
    def test_miscalibration_fires_alerts(self, telemetry):
        _, records = telemetry
        alerts = [r for r in records if r.get("kind") == "alert"]
        assert alerts, "collapsed coverage must trip the default rules"
        names = {a["name"] for a in alerts}
        assert any("coverage@0.9" in n for n in names)
        assert any("drift_events" in n for n in names)


class TestReportRendering:
    def test_report_renders_model_health_from_jsonl(self, telemetry, capsys):
        path, _ = telemetry
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        # The standard summary is still there ...
        assert "telemetry summary" in out
        # ... plus all three model-health artefacts.
        assert "model health" in out
        assert "calibration over time" in out
        assert "cov@0.9" in out
        assert "drift events" in out
        assert "alerts" in out
        assert "decisions" in out
