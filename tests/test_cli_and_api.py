"""Tests for the public API surface and the command-line interface."""

import numpy as np
import pytest

import repro
from repro.cli import build_parser, main


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name == "__version__":
                continue
            assert hasattr(repro, name), f"missing export {name}"

    def test_docstring_quickstart_classes_exist(self):
        assert callable(repro.alibaba_like_trace)
        assert callable(repro.TFTForecaster)
        assert callable(repro.RobustPredictiveAutoscaler)


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["evaluate", "--trace", "google", "--quantile", "0.8"])
        assert args.trace == "google"
        assert args.quantile == 0.8

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_evaluate_naive_runs(self, capsys):
        code = main(
            [
                "evaluate", "--trace", "alibaba", "--days", "6", "--model", "naive",
                "--context", "144", "--horizon", "36", "--quantile", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "under-provisioning" in out
        assert "fixed-0.9" in out

    def test_evaluate_adaptive_naive_runs(self, capsys):
        code = main(
            [
                "evaluate", "--trace", "alibaba", "--days", "6", "--model", "naive",
                "--context", "144", "--horizon", "36", "--adaptive",
                "--quantile-low", "0.6", "--quantile", "0.9",
            ]
        )
        assert code == 0
        assert "adaptive-0.6/0.9" in capsys.readouterr().out

    def test_forecast_arima_runs(self, capsys):
        code = main(
            [
                "forecast", "--trace", "google", "--days", "6", "--model", "arima",
                "--context", "144", "--horizon", "12",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "q0.9" in out
        # 12 forecast rows
        assert sum(1 for line in out.splitlines() if line.strip()[:2].strip().isdigit()) >= 12

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit):
            main(["forecast", "--model", "prophet"])

    def test_simulate_naive_runs(self, capsys):
        code = main(
            [
                "simulate", "--trace", "alibaba", "--days", "5", "--model", "naive",
                "--context", "144", "--horizon", "36", "--quantile", "0.9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "intervals simulated" in out
        assert "node-hours consumed" in out

    def test_simulate_replan_cadence_flag(self, capsys):
        code = main(
            [
                "simulate", "--trace", "alibaba", "--days", "5", "--model", "naive",
                "--context", "144", "--horizon", "36", "--replan-every", "12",
            ]
        )
        assert code == 0
        # More decisions with a shorter cadence than the default.
        decisions = int(
            [l for l in capsys.readouterr().out.splitlines() if "decisions" in l][0]
            .split(":")[1]
        )
        assert decisions >= 2
