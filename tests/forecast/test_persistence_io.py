"""Tests for forecaster save/load."""

import numpy as np
import pytest

from repro.forecast import MLPForecaster, TFTForecaster, TrainingConfig

from .conftest import SEASON

CTX, HOR = 32, 8


@pytest.fixture()
def config():
    return TrainingConfig(epochs=2, batch_size=32, window_stride=8, patience=0, seed=3)


class TestSaveLoad:
    def test_mlp_roundtrip(self, seasonal_series, config, tmp_path):
        original = MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(
            seasonal_series
        )
        original.save(tmp_path / "mlp.npz")
        restored = MLPForecaster(CTX, HOR, hidden_size=16, config=config).load(
            tmp_path / "mlp.npz"
        )
        context = seasonal_series[-CTX:]
        a = original.predict(context, levels=(0.5, 0.9))
        b = restored.predict(context, levels=(0.5, 0.9))
        np.testing.assert_allclose(a.values, b.values, rtol=1e-12)

    def test_tft_roundtrip(self, seasonal_series, config, tmp_path):
        levels = (0.1, 0.5, 0.9)
        original = TFTForecaster(
            CTX, HOR, quantile_levels=levels, d_model=8, num_heads=2, config=config
        ).fit(seasonal_series)
        original.save(tmp_path / "tft.npz")
        restored = TFTForecaster(
            CTX, HOR, quantile_levels=levels, d_model=8, num_heads=2, config=config
        ).load(tmp_path / "tft.npz")
        context = seasonal_series[-CTX:]
        np.testing.assert_allclose(
            original.predict(context).values, restored.predict(context).values,
            rtol=1e-12,
        )

    def test_load_restores_scaler(self, seasonal_series, config, tmp_path):
        original = MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(
            seasonal_series
        )
        original.save(tmp_path / "m.npz")
        restored = MLPForecaster(CTX, HOR, hidden_size=16, config=config).load(
            tmp_path / "m.npz"
        )
        assert restored.scaler.mean_ == pytest.approx(original.scaler.mean_)
        assert restored.scaler.std_ == pytest.approx(original.scaler.std_)

    def test_wrong_architecture_rejected(self, seasonal_series, config, tmp_path):
        MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(
            seasonal_series
        ).save(tmp_path / "m.npz")
        with pytest.raises((KeyError, ValueError)):
            MLPForecaster(CTX, HOR, hidden_size=32, config=config).load(
                tmp_path / "m.npz"
            )

    def test_save_before_fit_rejected(self, config, tmp_path):
        with pytest.raises(RuntimeError):
            MLPForecaster(CTX, HOR, config=config).save(tmp_path / "m.npz")
