"""Tests for quantile-forecast ensembling."""

import numpy as np
import pytest

from repro.forecast import (
    EnsembleForecaster,
    MLPForecaster,
    QuantileForecast,
    SeasonalNaiveForecaster,
    TrainingConfig,
    combine_quantile_forecasts,
)

from .conftest import SEASON


def fan(center: float, width: float, horizon: int = 4) -> QuantileForecast:
    levels = np.array([0.1, 0.5, 0.9])
    values = np.stack(
        [
            np.full(horizon, center - width),
            np.full(horizon, center),
            np.full(horizon, center + width),
        ]
    )
    return QuantileForecast(levels=levels, values=values, mean=np.full(horizon, center))


class TestCombine:
    def test_equal_weight_average(self):
        combined = combine_quantile_forecasts(
            [fan(100.0, 10.0), fan(200.0, 30.0)], levels=(0.1, 0.5, 0.9)
        )
        np.testing.assert_allclose(combined.at(0.5), 150.0)
        np.testing.assert_allclose(combined.at(0.9), (110.0 + 230.0) / 2)

    def test_weights_respected(self):
        combined = combine_quantile_forecasts(
            [fan(100.0, 10.0), fan(200.0, 10.0)],
            levels=(0.5,),
            weights=[3.0, 1.0],
        )
        np.testing.assert_allclose(combined.at(0.5), 125.0)

    def test_mean_combined_when_available(self):
        combined = combine_quantile_forecasts(
            [fan(100.0, 10.0), fan(300.0, 10.0)], levels=(0.5,)
        )
        np.testing.assert_allclose(combined.mean, 200.0)

    def test_monotone_result(self):
        rng = np.random.default_rng(0)
        members = [
            fan(float(rng.uniform(50, 150)), float(rng.uniform(1, 40)))
            for _ in range(5)
        ]
        combined = combine_quantile_forecasts(members, levels=(0.1, 0.5, 0.9))
        assert np.all(np.diff(combined.values, axis=0) >= 0)

    def test_mismatched_horizons_rejected(self):
        with pytest.raises(ValueError):
            combine_quantile_forecasts(
                [fan(1.0, 1.0, horizon=4), fan(1.0, 1.0, horizon=5)], levels=(0.5,)
            )

    def test_bad_weights_rejected(self):
        members = [fan(1.0, 1.0), fan(2.0, 1.0)]
        with pytest.raises(ValueError):
            combine_quantile_forecasts(members, (0.5,), weights=[1.0])
        with pytest.raises(ValueError):
            combine_quantile_forecasts(members, (0.5,), weights=[-1.0, 2.0])
        with pytest.raises(ValueError):
            combine_quantile_forecasts([], (0.5,))


class TestEnsembleForecaster:
    def test_fit_predict_cycle(self, seasonal_series, tiny_config):
        ensemble = EnsembleForecaster(
            [
                SeasonalNaiveForecaster(horizon=16, season=SEASON),
                MLPForecaster(32, 16, hidden_size=16, config=tiny_config),
            ]
        ).fit(seasonal_series)
        # Context long enough for the seasonal member; the MLP member's
        # slice is handled by the ensemble.
        fc = ensemble.predict(seasonal_series[-SEASON:], levels=(0.1, 0.5, 0.9))
        assert fc.horizon == 16
        assert np.all(fc.at(0.9) >= fc.at(0.1))

    def test_skill_weighting_prefers_better_member(self, seasonal_series, tiny_config):
        class Broken(SeasonalNaiveForecaster):
            def predict(self, context, levels=(0.5,), start_index=0):
                fc = super().predict(context, levels=levels, start_index=start_index)
                fc.values = fc.values + 500.0  # massively biased
                return fc

        good = SeasonalNaiveForecaster(horizon=16, season=SEASON)
        bad = Broken(horizon=16, season=SEASON)
        ensemble = EnsembleForecaster(
            [good, bad], tune_on_validation=True, validation_fraction=0.2
        ).fit(seasonal_series)
        assert ensemble.weights[0] > ensemble.weights[1]

    def test_mismatched_member_horizons_rejected(self, seasonal_series):
        ensemble = EnsembleForecaster(
            [
                SeasonalNaiveForecaster(horizon=8, season=SEASON),
                SeasonalNaiveForecaster(horizon=16, season=SEASON),
            ],
            tune_on_validation=True,
        )
        with pytest.raises(ValueError):
            ensemble.fit(seasonal_series)

    def test_requires_members(self):
        with pytest.raises(ValueError):
            EnsembleForecaster([])

    def test_predict_before_fit_rejected(self):
        ensemble = EnsembleForecaster(
            [SeasonalNaiveForecaster(horizon=8, season=SEASON)]
        )
        with pytest.raises(RuntimeError):
            ensemble.predict(np.ones(SEASON))
