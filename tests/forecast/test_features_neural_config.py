"""Tests for calendar features and the shared training scaffolding."""

import numpy as np
import pytest

from repro.forecast import NUM_CALENDAR_FEATURES, TrainingConfig, calendar_features
from repro.forecast.neural import NeuralForecaster
from repro.traces import STEPS_PER_DAY, STEPS_PER_WEEK


class TestCalendarFeatures:
    def test_shape(self):
        out = calendar_features(np.arange(10))
        assert out.shape == (10, NUM_CALENDAR_FEATURES)

    def test_batched_shape(self):
        out = calendar_features(np.zeros((4, 7)))
        assert out.shape == (4, 7, NUM_CALENDAR_FEATURES)

    def test_daily_periodicity(self):
        a = calendar_features(np.array([5]))
        b = calendar_features(np.array([5 + STEPS_PER_DAY * 7]))  # whole weeks later
        np.testing.assert_allclose(a, b, atol=1e-9)

    def test_day_feature_not_weekly_periodic(self):
        a = calendar_features(np.array([0]))
        b = calendar_features(np.array([STEPS_PER_DAY]))
        # day features equal; week features differ
        np.testing.assert_allclose(a[0, :2], b[0, :2], atol=1e-9)
        assert not np.allclose(a[0, 2:], b[0, 2:])

    def test_bounded(self):
        out = calendar_features(np.arange(STEPS_PER_WEEK))
        assert np.all(np.abs(out) <= 1.0)


class TestTrainingConfig:
    def test_defaults(self):
        config = TrainingConfig()
        assert config.learning_rate == 1e-3  # the paper's setting

    def test_rejects_bad_epochs(self):
        with pytest.raises(ValueError):
            TrainingConfig(epochs=0)

    def test_rejects_bad_validation_fraction(self):
        with pytest.raises(ValueError):
            TrainingConfig(validation_fraction=0.5)


class _Minimal(NeuralForecaster):
    """Concrete shell exposing the base-class hooks for testing."""

    def predict(self, context, levels=(), start_index=0):
        raise NotImplementedError


class TestNeuralForecasterScaffolding:
    def test_subclass_hooks_required(self):
        forecaster = _Minimal(context_length=4, horizon=2)
        with pytest.raises(NotImplementedError):
            forecaster._build(np.random.default_rng(0))
        with pytest.raises(NotImplementedError):
            forecaster._loss(np.zeros((1, 4)), np.zeros((1, 2)), np.zeros(1))

    def test_rejects_degenerate_lengths(self):
        with pytest.raises(ValueError):
            _Minimal(context_length=0, horizon=2)
        with pytest.raises(ValueError):
            _Minimal(context_length=4, horizon=0)

    def test_early_stopping_restores_best(self, seasonal_series=None):
        """With patience, the loaded weights must be the best-val epoch's."""
        from repro.forecast import MLPForecaster

        rng = np.random.default_rng(0)
        t = np.arange(48 * 12)
        series = 100.0 + 30.0 * np.sin(2 * np.pi * t / 48) + rng.normal(0, 3, len(t))
        config = TrainingConfig(
            epochs=6, batch_size=32, window_stride=4, patience=2,
            validation_fraction=0.25, seed=0,
        )
        model = MLPForecaster(24, 8, hidden_size=16, config=config).fit(series)
        val_losses = [h["val_loss"] for h in model.history if "val_loss" in h]
        assert val_losses, "validation never ran"
        # Training stopped within patience of the best epoch.
        best_epoch = int(np.argmin(val_losses))
        assert len(val_losses) <= best_epoch + 1 + config.patience
