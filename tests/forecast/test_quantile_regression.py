"""Tests for linear quantile regression and the grid-output MLP."""

import numpy as np
import pytest

from repro.forecast import (
    MLPForecaster,
    MLPQuantileForecaster,
    QuantileRegressionForecaster,
    TrainingConfig,
)

from .conftest import SEASON

CTX, HOR = 32, 16


@pytest.fixture(scope="module")
def grid_config():
    return TrainingConfig(epochs=4, batch_size=32, window_stride=6, patience=0, seed=0)


class TestQuantileRegression:
    def test_learns_conditional_quantiles_of_known_process(self):
        """On y = x + noise, the quantile spread must match the noise."""
        rng = np.random.default_rng(0)
        n = 4000
        series = np.zeros(n)
        for t in range(1, n):
            series[t] = 0.95 * series[t - 1] + rng.normal(0, 1.0)
        config = TrainingConfig(epochs=20, batch_size=64, window_stride=1, patience=0)
        f = QuantileRegressionForecaster(
            8, 1, quantile_levels=(0.1, 0.5, 0.9), config=config
        ).fit(series)
        fc = f.predict(series[-8:])
        # One-step-ahead 80% band of an AR(1) with unit noise: ~2.56 wide.
        width = float(fc.at(0.9)[0] - fc.at(0.1)[0])
        assert 1.2 < width < 5.0

    def test_grid_shapes(self, seasonal_series, grid_config):
        f = QuantileRegressionForecaster(
            CTX, HOR, quantile_levels=(0.2, 0.5, 0.8), config=grid_config
        ).fit(seasonal_series)
        fc = f.predict(seasonal_series[-CTX:])
        assert fc.values.shape == (3, HOR)
        assert np.all(np.diff(fc.values, axis=0) >= 0)

    def test_outside_grid_raises(self, seasonal_series, grid_config):
        f = QuantileRegressionForecaster(
            CTX, HOR, quantile_levels=(0.2, 0.5, 0.8), config=grid_config
        ).fit(seasonal_series)
        with pytest.raises(ValueError):
            f.predict(seasonal_series[-CTX:], levels=(0.95,))

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError):
            QuantileRegressionForecaster(CTX, HOR, quantile_levels=())
        with pytest.raises(ValueError):
            QuantileRegressionForecaster(CTX, HOR, quantile_levels=(0.5, 0.5))


class TestMLPQuantile:
    def test_same_body_as_parametric_twin(self, seasonal_series, grid_config):
        grid = MLPQuantileForecaster(
            CTX, HOR, quantile_levels=(0.5,), hidden_size=16, config=grid_config
        ).fit(seasonal_series)
        parametric = MLPForecaster(
            CTX, HOR, hidden_size=16, config=grid_config
        ).fit(seasonal_series)
        grid_names = {n.split(".")[0] for n, _ in grid.network.named_parameters()}
        para_names = {n.split(".")[0] for n, _ in parametric.network.named_parameters()}
        assert {"fc1", "fc2"} <= grid_names
        assert {"fc1", "fc2"} <= para_names

    def test_fit_reduces_loss(self, seasonal_series, grid_config):
        f = MLPQuantileForecaster(
            CTX, HOR, quantile_levels=(0.1, 0.5, 0.9), hidden_size=16,
            config=grid_config,
        ).fit(seasonal_series)
        assert f.history[-1]["train_loss"] < f.history[0]["train_loss"]

    def test_interpolation_within_grid(self, seasonal_series, grid_config):
        f = MLPQuantileForecaster(
            CTX, HOR, quantile_levels=(0.1, 0.5, 0.9), hidden_size=16,
            config=grid_config,
        ).fit(seasonal_series)
        fc = f.predict(seasonal_series[-CTX:], levels=(0.3, 0.7))
        assert fc.values.shape == (2, HOR)

    def test_wrong_context_length(self, seasonal_series, grid_config):
        f = MLPQuantileForecaster(
            CTX, HOR, quantile_levels=(0.5,), hidden_size=16, config=grid_config
        ).fit(seasonal_series)
        with pytest.raises(ValueError):
            f.predict(seasonal_series[: CTX - 1])
