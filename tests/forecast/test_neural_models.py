"""Tests for MLP, DeepAR, TFT, QB5000, and the point adapters.

Training budgets are deliberately tiny; assertions check structure,
calibration direction, and that learning reduces loss — not paper-level
accuracy (the benchmark suite covers that).
"""

import numpy as np
import pytest

from repro.forecast import (
    DeepARForecaster,
    MLPForecaster,
    PaddedPointForecaster,
    QB5000Forecaster,
    TFTForecaster,
    TFTPointForecaster,
    TrainingConfig,
    MedianPointAdapter,
)
from repro.forecast.qb5000 import KernelRegressionForecaster, LinearRegressionForecaster

from .conftest import SEASON

CTX, HOR = 32, 16


class TestMLP:
    def test_fit_reduces_loss(self, seasonal_series, tiny_config):
        f = MLPForecaster(CTX, HOR, hidden_size=16, config=tiny_config).fit(seasonal_series)
        assert f.history[-1]["train_loss"] < f.history[0]["train_loss"]

    def test_forecast_shapes_and_order(self, seasonal_series, tiny_config):
        f = MLPForecaster(CTX, HOR, hidden_size=16, config=tiny_config).fit(seasonal_series)
        fc = f.predict(seasonal_series[-CTX:], levels=(0.1, 0.5, 0.9))
        assert fc.horizon == HOR
        assert np.all(fc.at(0.9) > fc.at(0.1))

    def test_arbitrary_quantiles_available(self, seasonal_series, tiny_config):
        """Parametric models serve any level without retraining."""
        f = MLPForecaster(CTX, HOR, hidden_size=16, config=tiny_config).fit(seasonal_series)
        fc = f.predict(seasonal_series[-CTX:], levels=(0.123, 0.987))
        assert fc.values.shape == (2, HOR)

    def test_predictive_distribution_positive_std(self, seasonal_series, tiny_config):
        f = MLPForecaster(CTX, HOR, hidden_size=16, config=tiny_config).fit(seasonal_series)
        dist = f.predictive_distribution(seasonal_series[-CTX:])
        assert np.all(dist.std() > 0)

    def test_wrong_context_length_raises(self, seasonal_series, tiny_config):
        f = MLPForecaster(CTX, HOR, hidden_size=16, config=tiny_config).fit(seasonal_series)
        with pytest.raises(ValueError):
            f.predict(seasonal_series[: CTX + 1])

    def test_too_short_series_raises(self, tiny_config):
        with pytest.raises(ValueError):
            MLPForecaster(CTX, HOR, config=tiny_config).fit(np.ones(CTX + HOR))


class TestDeepAR:
    @pytest.fixture(scope="class")
    def fitted(self, seasonal_series):
        config = TrainingConfig(epochs=3, batch_size=32, window_stride=6, patience=0)
        return DeepARForecaster(
            CTX, HOR, hidden_size=12, num_layers=1, num_samples=40, config=config
        ).fit(seasonal_series)

    def test_fit_reduces_loss(self, fitted):
        assert fitted.history[-1]["train_loss"] < fitted.history[0]["train_loss"]

    def test_sample_cloud_shape(self, fitted, seasonal_series):
        cloud = fitted.sample_paths(seasonal_series[-CTX:])
        assert cloud.samples.shape == (40, HOR)

    def test_quantiles_from_samples_ordered(self, fitted, seasonal_series):
        fc = fitted.predict(seasonal_series[-CTX:], levels=(0.2, 0.5, 0.8))
        assert np.all(fc.at(0.8) >= fc.at(0.2))

    def test_sampling_spread_reasonable(self, fitted, seasonal_series):
        """The sample std should be within an order of the noise scale."""
        cloud = fitted.sample_paths(seasonal_series[-CTX:])
        assert 0.3 < cloud.std().mean() < 60.0

    def test_gaussian_likelihood_variant(self, seasonal_series, tiny_config):
        f = DeepARForecaster(
            CTX, HOR, hidden_size=8, num_samples=20,
            likelihood="gaussian", config=tiny_config,
        ).fit(seasonal_series)
        fc = f.predict(seasonal_series[-CTX:], levels=(0.5,))
        assert fc.horizon == HOR

    def test_rejects_unknown_likelihood(self):
        with pytest.raises(ValueError):
            DeepARForecaster(CTX, HOR, likelihood="poisson")

    def test_rejects_tiny_sample_count(self):
        with pytest.raises(ValueError):
            DeepARForecaster(CTX, HOR, num_samples=1)


class TestTFT:
    @pytest.fixture(scope="class")
    def fitted(self, seasonal_series):
        config = TrainingConfig(epochs=3, batch_size=32, window_stride=6, patience=0)
        return TFTForecaster(
            CTX, HOR, quantile_levels=(0.1, 0.5, 0.9), d_model=12, num_heads=2,
            config=config,
        ).fit(seasonal_series)

    def test_fit_reduces_loss(self, fitted):
        assert fitted.history[-1]["train_loss"] < fitted.history[0]["train_loss"]

    def test_grid_forecast(self, fitted, seasonal_series):
        fc = fitted.predict(seasonal_series[-CTX:])
        assert fc.values.shape == (3, HOR)
        assert np.all(np.diff(fc.values, axis=0) >= 0)  # monotone after sort

    def test_off_grid_interpolation(self, fitted, seasonal_series):
        fc = fitted.predict(seasonal_series[-CTX:], levels=(0.3,))
        low = fitted.predict(seasonal_series[-CTX:]).at(0.1)
        high = fitted.predict(seasonal_series[-CTX:]).at(0.5)
        assert np.all(fc.values[0] >= np.minimum(low, high) - 1e-9)
        assert np.all(fc.values[0] <= np.maximum(low, high) + 1e-9)

    def test_outside_grid_raises(self, fitted, seasonal_series):
        with pytest.raises(ValueError):
            fitted.predict(seasonal_series[-CTX:], levels=(0.99,))

    def test_attention_weights_exposed(self, fitted, seasonal_series):
        fitted.predict(seasonal_series[-CTX:])
        weights = fitted.attention_weights()
        assert weights is not None
        assert weights.shape == (1, HOR, CTX + HOR)
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0, rtol=1e-6)

    def test_rejects_duplicate_levels(self):
        with pytest.raises(ValueError):
            TFTForecaster(CTX, HOR, quantile_levels=(0.5, 0.5))

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ValueError):
            TFTForecaster(CTX, HOR, quantile_levels=(0.0, 0.5))


class TestQB5000:
    def test_linear_component_learns_trend(self):
        t = np.arange(500, dtype=float)
        f = LinearRegressionForecaster(CTX, HOR).fit(2.0 * t)
        pred = f.predict_point(2.0 * t[-CTX:])
        expected = 2.0 * (t[-1] + np.arange(1, HOR + 1))
        np.testing.assert_allclose(pred, expected, rtol=1e-6)

    def test_kernel_component_recalls_similar_windows(self, seasonal_series):
        f = KernelRegressionForecaster(CTX, HOR).fit(seasonal_series[:-HOR])
        pred = f.predict_point(seasonal_series[-CTX - HOR : -HOR])
        actual = seasonal_series[-HOR:]
        assert np.abs(pred - actual).mean() < 15.0

    def test_kernel_degenerate_bandwidth_falls_back(self):
        constant = np.full(200, 5.0)
        f = KernelRegressionForecaster(CTX, HOR).fit(constant)
        pred = f.predict_point(np.full(CTX, 1000.0))  # far from everything
        assert pred.shape == (HOR,)
        assert np.all(np.isfinite(pred))

    def test_ensemble_combines_components(self, seasonal_series, tiny_config):
        f = QB5000Forecaster(CTX, HOR, hidden_size=8, config=tiny_config).fit(
            seasonal_series
        )
        pred = f.predict_point(seasonal_series[-CTX:])
        parts = [
            f.linear.predict_point(seasonal_series[-CTX:]),
            f.lstm.predict_point(seasonal_series[-CTX:]),
            f.kernel.predict_point(seasonal_series[-CTX:]),
        ]
        np.testing.assert_allclose(pred, np.mean(parts, axis=0))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            QB5000Forecaster(CTX, HOR).predict_point(np.ones(CTX))


class TestPointAdapters:
    def test_tft_point_single_quantile(self, seasonal_series, tiny_config):
        f = TFTPointForecaster(CTX, HOR, d_model=12, num_heads=2, config=tiny_config)
        f.fit(seasonal_series)
        pred = f.predict_point(seasonal_series[-CTX:])
        assert pred.shape == (HOR,)
        assert f._tft.quantile_levels == (0.5,)

    def test_median_adapter(self, seasonal_series, tiny_config):
        base = MLPForecaster(CTX, HOR, hidden_size=8, config=tiny_config)
        adapter = MedianPointAdapter(base).fit(seasonal_series)
        pred = adapter.predict_point(seasonal_series[-CTX:])
        np.testing.assert_allclose(
            pred, base.predict(seasonal_series[-CTX:], levels=(0.5,)).values[0]
        )


class TestPadding:
    class _ConstantForecaster:
        _fitted = True

        def fit(self, series):
            return self

        def predict_point(self, context, start_index=0):
            return np.full(4, 10.0)

        def _require_fitted(self):
            pass

    def make(self, **kwargs):
        from repro.forecast.base import PointForecaster

        base = self._ConstantForecaster()
        padded = PaddedPointForecaster.__new__(PaddedPointForecaster)
        PaddedPointForecaster.__init__(padded, base, **kwargs)
        padded._fitted = True
        return padded

    def test_no_history_no_padding(self):
        padded = self.make()
        np.testing.assert_array_equal(padded.predict_point(np.ones(4)), np.full(4, 10.0))

    def test_underestimation_raises_padding(self):
        padded = self.make(percentile=1.0)
        padded.observe(actual=np.full(4, 13.0), forecast=np.full(4, 10.0))
        assert padded.padding == pytest.approx(3.0)
        np.testing.assert_allclose(padded.predict_point(np.ones(4)), np.full(4, 13.0))

    def test_overestimation_ignored(self):
        padded = self.make()
        padded.observe(actual=np.full(4, 5.0), forecast=np.full(4, 10.0))
        assert padded.padding == 0.0

    def test_window_evicts_old_errors(self):
        padded = self.make(window=4, percentile=1.0)
        padded.observe(actual=np.full(4, 20.0), forecast=np.full(4, 10.0))
        padded.observe(actual=np.full(4, 11.0), forecast=np.full(4, 10.0))
        assert padded.padding == pytest.approx(1.0)  # the 10.0 errors evicted

    def test_observe_shape_mismatch(self):
        padded = self.make()
        with pytest.raises(ValueError):
            padded.observe(np.ones(3), np.ones(4))

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            self.make(percentile=0.0)
        with pytest.raises(ValueError):
            self.make(window=0)
