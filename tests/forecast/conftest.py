"""Shared fixtures for forecaster tests: a small seasonal series and a
tiny training budget so each test runs in a couple of seconds."""

import numpy as np
import pytest

from repro.forecast import TrainingConfig

SEASON = 48  # a short synthetic "day" for fast tests


@pytest.fixture(scope="session")
def seasonal_series():
    """Sinusoid + noise, ~20 cycles — learnable in a few epochs."""
    rng = np.random.default_rng(0)
    t = np.arange(SEASON * 20)
    return (
        100.0
        + 30.0 * np.sin(2 * np.pi * t / SEASON)
        + rng.normal(0.0, 3.0, size=len(t))
    )


@pytest.fixture()
def tiny_config():
    return TrainingConfig(
        epochs=3, batch_size=32, window_stride=6, patience=0, seed=0
    )
