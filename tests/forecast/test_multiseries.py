"""Tests for multi-series training (Eq. 2 sums the loss over n series)."""

import numpy as np
import pytest

from repro.forecast import MLPForecaster, TrainingConfig
from repro.nn import WindowDataset

CTX, HOR = 24, 8


@pytest.fixture()
def two_series():
    rng = np.random.default_rng(1)
    t = np.arange(48 * 10)
    base = 100.0 + 30.0 * np.sin(2 * np.pi * t / 48)
    return [
        base + rng.normal(0, 3, len(t)),
        base * 1.5 + rng.normal(0, 3, len(t)),
    ]


class TestMultiSeriesFit:
    def test_fit_accepts_list(self, two_series):
        config = TrainingConfig(epochs=2, window_stride=8, patience=0)
        model = MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(two_series)
        fc = model.predict(two_series[0][-CTX:])
        assert fc.horizon == HOR

    def test_scaler_fitted_on_all_series(self, two_series):
        config = TrainingConfig(epochs=1, window_stride=8, patience=0)
        model = MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(two_series)
        expected_mean = np.concatenate(two_series).mean()
        assert model.scaler.mean_ == pytest.approx(expected_mean)

    def test_validation_runs_per_series(self, two_series):
        config = TrainingConfig(
            epochs=3, window_stride=4, patience=2, validation_fraction=0.3
        )
        model = MLPForecaster(CTX, HOR, hidden_size=16, config=config).fit(two_series)
        assert any("val_loss" in h for h in model.history)

    def test_short_member_rejected(self, two_series):
        config = TrainingConfig(epochs=1, patience=0)
        with pytest.raises(ValueError):
            MLPForecaster(CTX, HOR, config=config).fit(
                [two_series[0], np.ones(CTX + HOR)]
            )


class TestWindowOffsets:
    def test_offsets_shift_start(self):
        ds = WindowDataset(
            [np.arange(10.0)], context_length=3, horizon=2, start_offsets=[100]
        )
        assert ds[0].start == 100

    def test_offsets_length_checked(self):
        with pytest.raises(ValueError):
            WindowDataset(
                [np.arange(10.0), np.arange(10.0)],
                context_length=3,
                horizon=2,
                start_offsets=[0],
            )
