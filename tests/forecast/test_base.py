"""Tests for QuantileForecast and the forecaster interfaces."""

import numpy as np
import pytest

from repro.forecast import QuantileForecast, SeasonalNaiveForecaster


def make_forecast():
    levels = np.array([0.1, 0.5, 0.9])
    values = np.stack([np.full(4, 8.0), np.full(4, 10.0), np.full(4, 14.0)])
    return QuantileForecast(levels=levels, values=values)


class TestQuantileForecast:
    def test_horizon(self):
        assert make_forecast().horizon == 4

    def test_at_exact_level(self):
        np.testing.assert_array_equal(make_forecast().at(0.5), np.full(4, 10.0))

    def test_at_interpolates(self):
        # halfway between 0.5 (10) and 0.9 (14)
        np.testing.assert_allclose(make_forecast().at(0.7), np.full(4, 12.0))

    def test_at_outside_grid_raises(self):
        with pytest.raises(ValueError):
            make_forecast().at(0.95)

    def test_median_property(self):
        np.testing.assert_array_equal(make_forecast().median, np.full(4, 10.0))

    def test_point_prefers_mean(self):
        fc = QuantileForecast(
            levels=np.array([0.5]), values=np.full((1, 3), 5.0), mean=np.full(3, 7.0)
        )
        np.testing.assert_array_equal(fc.point, np.full(3, 7.0))

    def test_point_falls_back_to_median(self):
        np.testing.assert_array_equal(make_forecast().point, np.full(4, 10.0))

    def test_as_dict(self):
        d = make_forecast().as_dict()
        assert set(d) == {0.1, 0.5, 0.9}
        np.testing.assert_array_equal(d[0.9], np.full(4, 14.0))

    def test_sorted_monotone_fixes_crossing(self):
        fc = QuantileForecast(
            levels=np.array([0.1, 0.9]),
            values=np.array([[5.0, 1.0], [3.0, 2.0]]),  # crossed at step 0
        )
        fixed = fc.sorted_monotone()
        assert np.all(np.diff(fixed.values, axis=0) >= 0)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            QuantileForecast(levels=np.array([0.5]), values=np.ones((2, 3)))

    def test_rejects_unsorted_levels(self):
        with pytest.raises(ValueError):
            QuantileForecast(levels=np.array([0.9, 0.5]), values=np.ones((2, 3)))

    def test_rejects_out_of_range_levels(self):
        with pytest.raises(ValueError):
            QuantileForecast(levels=np.array([0.0, 0.5]), values=np.ones((2, 3)))

    def test_rejects_bad_mean_shape(self):
        with pytest.raises(ValueError):
            QuantileForecast(
                levels=np.array([0.5]), values=np.ones((1, 3)), mean=np.ones(2)
            )


class TestForecasterLifecycle:
    def test_predict_before_fit_raises(self):
        forecaster = SeasonalNaiveForecaster(horizon=4, season=10)
        with pytest.raises(RuntimeError):
            forecaster.predict(np.ones(10))
