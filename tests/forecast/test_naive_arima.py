"""Tests for the naive and ARIMA forecasters."""

import numpy as np
import pytest

from repro.forecast import ARIMAForecaster, PersistenceForecaster, SeasonalNaiveForecaster

from .conftest import SEASON


class TestSeasonalNaive:
    def test_repeats_last_season(self, seasonal_series):
        f = SeasonalNaiveForecaster(horizon=SEASON, season=SEASON).fit(seasonal_series)
        context = seasonal_series[-SEASON * 2 :]
        fc = f.predict(context)
        np.testing.assert_array_equal(fc.mean, context[-SEASON:])

    def test_horizon_longer_than_season_wraps(self, seasonal_series):
        f = SeasonalNaiveForecaster(horizon=SEASON + 5, season=SEASON).fit(seasonal_series)
        fc = f.predict(seasonal_series[-SEASON:])
        np.testing.assert_array_equal(fc.mean[SEASON:], fc.mean[:5])

    def test_quantiles_ordered(self, seasonal_series):
        f = SeasonalNaiveForecaster(horizon=8, season=SEASON).fit(seasonal_series)
        fc = f.predict(seasonal_series[-SEASON:], levels=(0.1, 0.5, 0.9))
        assert np.all(fc.at(0.9) >= fc.at(0.5))
        assert np.all(fc.at(0.5) >= fc.at(0.1))

    def test_reasonable_accuracy_on_seasonal_data(self, seasonal_series):
        f = SeasonalNaiveForecaster(horizon=SEASON, season=SEASON).fit(
            seasonal_series[:-SEASON]
        )
        fc = f.predict(seasonal_series[-SEASON * 2 : -SEASON])
        error = np.abs(fc.mean - seasonal_series[-SEASON:]).mean()
        assert error < 10.0  # noise std is 3; far below the 30-amplitude signal

    def test_short_context_raises(self, seasonal_series):
        f = SeasonalNaiveForecaster(horizon=4, season=SEASON).fit(seasonal_series)
        with pytest.raises(ValueError):
            f.predict(seasonal_series[: SEASON // 2])

    def test_short_series_raises(self):
        with pytest.raises(ValueError):
            SeasonalNaiveForecaster(horizon=4, season=100).fit(np.ones(50))


class TestPersistence:
    def test_repeats_last_value(self, seasonal_series):
        f = PersistenceForecaster(horizon=5).fit(seasonal_series)
        fc = f.predict(seasonal_series[:100])
        np.testing.assert_array_equal(fc.mean, np.full(5, seasonal_series[99]))

    def test_uncertainty_grows_with_horizon(self, seasonal_series):
        f = PersistenceForecaster(horizon=10).fit(seasonal_series)
        fc = f.predict(seasonal_series[:100], levels=(0.1, 0.9))
        width = fc.at(0.9) - fc.at(0.1)
        assert np.all(np.diff(width) > 0)


class TestARIMA:
    def test_fits_ar1_process(self):
        """On a known AR(1), the fitted AR coefficient should be close."""
        rng = np.random.default_rng(1)
        n, phi = 4000, 0.8
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phi * x[t - 1] + rng.normal()
        f = ARIMAForecaster(horizon=5, order=(1, 0, 0)).fit(x)
        assert f.ar_coef[0] == pytest.approx(phi, abs=0.05)

    def test_sigma_close_to_innovation_std(self):
        rng = np.random.default_rng(2)
        n = 4000
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = 0.5 * x[t - 1] + rng.normal(0.0, 2.0)
        f = ARIMAForecaster(horizon=5, order=(1, 0, 0)).fit(x)
        assert f.sigma == pytest.approx(2.0, rel=0.1)

    def test_psi_weights_ar1(self):
        f = ARIMAForecaster(horizon=4, order=(1, 0, 0))
        f.ar_coef = np.array([0.5])
        np.testing.assert_allclose(f.psi_weights(4), [1.0, 0.5, 0.25, 0.125])

    def test_psi_weights_ma1(self):
        f = ARIMAForecaster(horizon=3, order=(0, 0, 1))
        f.ma_coef = np.array([0.7])
        np.testing.assert_allclose(f.psi_weights(3), [1.0, 0.7, 0.0])

    def test_forecast_spread_grows(self, seasonal_series):
        f = ARIMAForecaster(horizon=20, order=(2, 1, 1)).fit(seasonal_series)
        fc = f.predict(seasonal_series[-200:], levels=(0.1, 0.9))
        width = fc.at(0.9) - fc.at(0.1)
        assert width[-1] > width[0]

    def test_differencing_handles_trend(self):
        """ARIMA(1,1,0) should track a linear trend that AR alone cannot."""
        rng = np.random.default_rng(3)
        t = np.arange(2000, dtype=float)
        x = 2.0 * t + rng.normal(0, 1.0, size=len(t))
        f = ARIMAForecaster(horizon=10, order=(1, 1, 0)).fit(x)
        fc = f.predict(x[-200:])
        expected = 2.0 * (t[-1] + np.arange(1, 11))
        np.testing.assert_allclose(fc.mean, expected, rtol=0.01)

    def test_quantiles_bracket_mean(self, seasonal_series):
        f = ARIMAForecaster(horizon=10).fit(seasonal_series)
        fc = f.predict(seasonal_series[-200:], levels=(0.1, 0.5, 0.9))
        assert np.all(fc.at(0.9) > fc.at(0.1))
        np.testing.assert_allclose(fc.at(0.5), fc.mean, rtol=1e-9)

    def test_rejects_invalid_order(self):
        with pytest.raises(ValueError):
            ARIMAForecaster(horizon=5, order=(0, 1, 0))

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            ARIMAForecaster(horizon=5).fit(np.ones(20))

    def test_short_context_raises(self, seasonal_series):
        f = ARIMAForecaster(horizon=5).fit(seasonal_series)
        with pytest.raises(ValueError):
            f.predict(seasonal_series[:5])
