"""Tests for incremental warm-started refits of neural forecasters.

The bugfix under test: ``fit()`` used to unconditionally rebuild the
network and refit the scaler, so an online refit discarded all learned
state and its provenance was indistinguishable from a cold fit.  With
``warm_start=True`` the trained network and scaler are reused, the
training history accumulates across fits with a ``cold|warm`` mode per
epoch, and the shuffling seed advances with ``fits_completed`` so a
refit is continued training, not a bit-identical replay.
"""

import numpy as np
import pytest

from repro.forecast.mlp import MLPForecaster
from repro.forecast.neural import TrainingConfig

CTX, HOR = 8, 4


def make_series(n=60, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 50 + 20 * np.sin(2 * np.pi * t / 12) + rng.normal(0, 1, n)


def make_model(epochs=3, patience=0, seed=0):
    # patience=0 disables validation: epoch counts are then exact.
    config = TrainingConfig(epochs=epochs, patience=patience, seed=seed)
    return MLPForecaster(CTX, HOR, hidden_size=8, config=config)


class TestWarmStartReusesState:
    def test_warm_fit_keeps_network_and_scaler(self):
        model = make_model()
        model.fit(make_series())
        network, mean = model.network, float(model.scaler.mean_)
        model.fit(make_series(seed=1) + 10, warm_start=True)
        assert model.network is network
        assert float(model.scaler.mean_) == mean

    def test_cold_fit_rebuilds_network_and_scaler(self):
        model = make_model()
        model.fit(make_series())
        network, mean = model.network, float(model.scaler.mean_)
        model.fit(make_series(seed=1) + 10)
        assert model.network is not network
        assert float(model.scaler.mean_) != mean

    def test_warm_start_on_unfitted_model_is_a_cold_fit(self):
        model = make_model()
        model.fit(make_series(), warm_start=True)
        assert model.network is not None
        assert all(r["mode"] == "cold" for r in model.history)

    def test_warm_fit_continues_training(self):
        # Same data, warm refit: the weights must move (continued
        # training), not be rebuilt from the cold seed.
        series = make_series()
        model = make_model()
        model.fit(series)
        before = {
            k: v.copy() for k, v in model.network.state_dict().items()
        }
        model.fit(series, warm_start=True)
        after = model.network.state_dict()
        assert any(
            not np.allclose(before[k], after[k]) for k in before
        )


class TestCumulativeHistory:
    def test_history_accumulates_with_modes(self):
        model = make_model(epochs=3)
        model.fit(make_series())
        model.fit(make_series(seed=1), warm_start=True)
        modes = [r["mode"] for r in model.history]
        assert modes == ["cold"] * 3 + ["warm"] * 3
        assert [r["epoch"] for r in model.history] == list(range(6))

    def test_second_warm_fit_keeps_appending(self):
        model = make_model(epochs=2)
        model.fit(make_series())
        model.fit(make_series(seed=1), warm_start=True)
        model.fit(make_series(seed=2), warm_start=True)
        assert len(model.history) == 6
        assert [r["epoch"] for r in model.history] == list(range(6))

    def test_cold_fit_resets_history(self):
        model = make_model(epochs=2)
        model.fit(make_series())
        model.fit(make_series(seed=1), warm_start=True)
        model.fit(make_series(seed=2))  # cold again
        assert [r["mode"] for r in model.history] == ["cold", "cold"]
        assert [r["epoch"] for r in model.history] == [0, 1]

    def test_fits_completed_counts_every_fit(self):
        model = make_model(epochs=1)
        assert model.fits_completed == 0
        model.fit(make_series())
        model.fit(make_series(), warm_start=True)
        model.fit(make_series())
        assert model.fits_completed == 3


class TestEpochOverride:
    def test_epochs_argument_caps_this_call_only(self):
        model = make_model(epochs=4)
        model.fit(make_series())
        model.fit(make_series(seed=1), warm_start=True, epochs=1)
        warm = [r for r in model.history if r["mode"] == "warm"]
        assert len(warm) == 1
        # The configured budget is untouched for the next call.
        model.fit(make_series(seed=2), warm_start=True)
        assert len(model.history) == 4 + 1 + 4

    def test_zero_epochs_rejected(self):
        model = make_model()
        with pytest.raises(ValueError, match="epochs"):
            model.fit(make_series(), epochs=0)


class TestWarmRefitDeterminism:
    def test_warm_refit_is_not_a_replay_of_the_cold_fit(self):
        # The shuffle seed advances with fits_completed: refitting on
        # the identical series must not reproduce the cold fit's
        # trajectory batch for batch.
        series = make_series()
        model = make_model(epochs=3)
        model.fit(series)
        cold_losses = [r["train_loss"] for r in model.history]
        model.fit(series, warm_start=True)
        warm_losses = [
            r["train_loss"] for r in model.history if r["mode"] == "warm"
        ]
        assert warm_losses != cold_losses

    def test_same_lineage_is_reproducible(self):
        # Cold fit + warm refit is deterministic end to end.
        def lineage():
            model = make_model(epochs=2)
            model.fit(make_series())
            model.fit(make_series(seed=1) + 5, warm_start=True)
            forecast = model.predict(make_series()[-CTX:], levels=(0.5,))
            return forecast.values

        np.testing.assert_allclose(lineage(), lineage())
