"""Tests for the hyperparameter-search substrate."""

import numpy as np
import pytest

from repro.tuning import MedianPruner, Study, Trial, TrialPruned, grid_search


class TestTrialSuggestions:
    def make_trial(self, seed=0):
        return Trial(number=0, _rng=np.random.default_rng(seed))

    def test_float_in_bounds(self):
        trial = self.make_trial()
        for _ in range(50):
            assert 1.0 <= trial.suggest_float("x", 1.0, 2.0) <= 2.0

    def test_log_float_spans_decades(self):
        trial = self.make_trial()
        values = [trial.suggest_float("lr", 1e-5, 1e-1, log=True) for _ in range(300)]
        assert min(values) < 1e-4
        assert max(values) > 1e-2

    def test_int_inclusive_bounds(self):
        trial = self.make_trial()
        values = {trial.suggest_int("n", 1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_categorical(self):
        trial = self.make_trial()
        values = {trial.suggest_categorical("act", ["relu", "tanh"]) for _ in range(50)}
        assert values == {"relu", "tanh"}

    def test_params_recorded(self):
        trial = self.make_trial()
        trial.suggest_int("n", 1, 5)
        trial.suggest_float("x", 0.0, 1.0)
        assert set(trial.params) == {"n", "x"}

    def test_rejects_bad_bounds(self):
        trial = self.make_trial()
        with pytest.raises(ValueError):
            trial.suggest_float("x", 2.0, 1.0)
        with pytest.raises(ValueError):
            trial.suggest_float("x", -1.0, 1.0, log=True)
        with pytest.raises(ValueError):
            trial.suggest_categorical("c", [])


class TestStudy:
    def test_finds_quadratic_minimum(self):
        study = Study(seed=0)
        study.optimize(lambda t: (t.suggest_float("x", -10, 10) - 3.0) ** 2, n_trials=200)
        assert study.best_params["x"] == pytest.approx(3.0, abs=0.5)
        assert study.best_value < 0.25

    def test_maximize_direction(self):
        study = Study(direction="maximize", seed=1)
        study.optimize(lambda t: -((t.suggest_float("x", -5, 5) - 1.0) ** 2), n_trials=200)
        assert study.best_params["x"] == pytest.approx(1.0, abs=0.5)

    def test_deterministic_given_seed(self):
        def objective(t):
            return t.suggest_float("x", 0, 1)

        a = Study(seed=7)
        a.optimize(objective, 20)
        b = Study(seed=7)
        b.optimize(objective, 20)
        assert a.best_value == b.best_value

    def test_no_trials_raises(self):
        with pytest.raises(RuntimeError):
            Study().best_trial
        with pytest.raises(ValueError):
            Study().optimize(lambda t: 0.0, n_trials=0)

    def test_pruned_trials_excluded_from_best(self):
        pruner = MedianPruner(warmup_trials=1)
        study = Study(seed=2, pruner=pruner)

        def objective(trial):
            x = trial.suggest_float("x", 0.0, 1.0)
            trial.report(x, step=0)  # bad trials pruned against the median
            return x

        study.optimize(objective, 30)
        assert any(t.pruned for t in study.trials)
        assert study.best_trial.pruned is False

    def test_rejects_unknown_direction(self):
        with pytest.raises(ValueError):
            Study(direction="sideways")


class TestMedianPruner:
    def test_no_pruning_during_warmup(self):
        pruner = MedianPruner(warmup_trials=3)
        trial = Trial(number=0, _rng=np.random.default_rng(0), _pruner=pruner)
        trial.report(100.0, step=0)  # no peers yet
        assert trial.intermediate == [100.0]

    def test_prunes_worse_than_median(self):
        pruner = MedianPruner(warmup_trials=2)
        pruner.register([1.0])
        pruner.register([2.0])
        trial = Trial(number=2, _rng=np.random.default_rng(0), _pruner=pruner)
        with pytest.raises(TrialPruned):
            trial.report(10.0, step=0)


class TestGridSearch:
    def test_exhaustive(self):
        best, results = grid_search(
            lambda p: (p["x"] - 2) ** 2 + p["y"],
            {"x": [0, 1, 2, 3], "y": [0.0, 0.5]},
        )
        assert best.params == {"x": 2, "y": 0.0}
        assert len(results) == 8

    def test_maximize(self):
        best, _ = grid_search(
            lambda p: p["x"], {"x": [1, 5, 3]}, direction="maximize"
        )
        assert best.params["x"] == 5

    def test_deterministic_order(self):
        _, results = grid_search(lambda p: 0.0, {"a": [1, 2], "b": [3, 4]})
        combos = [tuple(r.params.values()) for r in results]
        assert combos == [(1, 3), (1, 4), (2, 3), (2, 4)]

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            grid_search(lambda p: 0.0, {})

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            grid_search(lambda p: 0.0, {"x": [1]}, direction="up")
