"""Tests for telemetry-layer fault injection."""

import math

import numpy as np

from repro.faults import FaultSchedule, TelemetryFaultInjector, corrupt_series


class TestInjector:
    def test_clean_intervals_pass_through(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("nan@5"))
        assert injector.apply(123.4, 0) == 123.4
        assert injector.total_injected == 0

    def test_nan_and_drop_surface_as_nan(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("nan@0,drop@1"))
        assert math.isnan(injector.apply(100.0, 0))
        assert math.isnan(injector.apply(100.0, 1))
        assert injector.injected == {"nan": 1, "drop": 1}

    def test_inf(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("inf@0"))
        assert math.isinf(injector.apply(100.0, 0))

    def test_negative(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("negative@0"))
        assert injector.apply(100.0, 0) < 0

    def test_spike_multiplies_by_param(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("spike@0:8"))
        assert injector.apply(50.0, 0) == 400.0

    def test_spike_default_is_x10(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("spike@0"))
        assert injector.apply(50.0, 0) == 500.0

    def test_duplicate_replays_last_clean_value(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("duplicate@1"))
        injector.apply(100.0, 0)
        assert injector.apply(200.0, 1) == 100.0
        # The *clean* 200 is remembered, not the corrupted output.
        assert injector.apply(300.0, 2) == 300.0

    def test_duplicate_with_no_history_passes_through(self):
        injector = TelemetryFaultInjector(FaultSchedule.parse("duplicate@0"))
        assert injector.apply(100.0, 0) == 100.0

    def test_stacked_faults_compose_in_order(self):
        # Same interval: spike then... nan wins (kind order is
        # deterministic, so the composition is reproducible).
        injector = TelemetryFaultInjector(FaultSchedule.parse("spike@0:2,nan@0"))
        assert math.isnan(injector.apply(100.0, 0))
        assert injector.total_injected == 2

    def test_only_telemetry_kinds_apply(self):
        injector = TelemetryFaultInjector(
            FaultSchedule.parse("planner_error@0,node_crash@0")
        )
        assert injector.apply(100.0, 0) == 100.0
        assert injector.total_injected == 0


class TestCorruptSeries:
    def test_input_untouched_and_counts_returned(self):
        series = np.full(10, 100.0)
        corrupted, counts = corrupt_series(
            series, FaultSchedule.parse("nan@2,spike@5:3")
        )
        assert not np.isnan(series).any()
        assert np.isnan(corrupted[2])
        assert corrupted[5] == 300.0
        assert counts == {"nan": 1, "spike": 1}

    def test_no_faults_is_identity(self):
        series = np.arange(5, dtype=float)
        corrupted, counts = corrupt_series(series, FaultSchedule())
        assert np.array_equal(corrupted, series)
        assert counts == {}
