"""Tests for planner-layer fault injection (FlakyPlanner)."""

import numpy as np
import pytest

from repro.core import ScalingPlan
from repro.faults import (
    FaultSchedule,
    FlakyPlanner,
    InjectedPlannerError,
    PlannerTimeoutError,
)


class StubPlanner:
    name = "stub"

    def __init__(self):
        self.calls = []
        self.extra = "delegated"

    def plan(self, context, start_index=0):
        self.calls.append(start_index)
        return ScalingPlan(
            nodes=np.ones(4, dtype=np.int64), threshold=60.0, strategy="stub"
        )


def make(spec, time_offset=0):
    inner = StubPlanner()
    return inner, FlakyPlanner(inner, FaultSchedule.parse(spec), time_offset=time_offset)


CONTEXT = np.full(6, 100.0)  # decision index = start_index + 6


class TestFaultFiring:
    def test_fault_at_decision_interval_raises(self):
        _, flaky = make("planner_error@6")
        with pytest.raises(InjectedPlannerError):
            flaky.plan(CONTEXT, start_index=0)
        assert flaky.faults_injected == 1

    def test_timeout_raises_distinct_type(self):
        _, flaky = make("planner_timeout@6")
        with pytest.raises(PlannerTimeoutError):
            flaky.plan(CONTEXT, start_index=0)

    def test_clean_decision_passes_through(self):
        inner, flaky = make("planner_error@99")
        plan = flaky.plan(CONTEXT, start_index=0)
        assert plan.strategy == "stub"
        assert inner.calls == [0]
        assert flaky.faults_injected == 0

    def test_fault_latches_until_next_decision(self):
        # The fault is scheduled at t=8 but decisions only happen at
        # t=6, 10, ...: it must fire on the next planning attempt.
        _, flaky = make("planner_error@8")
        flaky.plan(CONTEXT, start_index=0)  # decision t=6: clean
        with pytest.raises(InjectedPlannerError):
            flaky.plan(CONTEXT, start_index=4)  # decision t=10

    def test_retry_of_same_decision_hits_same_fault(self):
        _, flaky = make("planner_error@6")
        for _ in range(3):  # deterministic crash: every retry fails
            with pytest.raises(InjectedPlannerError):
                flaky.plan(CONTEXT, start_index=0)
        assert flaky.faults_injected == 3

    def test_next_decision_recovers(self):
        inner, flaky = make("planner_error@6")
        with pytest.raises(InjectedPlannerError):
            flaky.plan(CONTEXT, start_index=0)
        plan = flaky.plan(CONTEXT, start_index=4)  # decision t=10
        assert plan.strategy == "stub"
        assert inner.calls == [4]

    def test_one_fault_consumed_per_decision(self):
        # Two pending faults: each poisons one decision, in time order.
        _, flaky = make("planner_error@1,planner_timeout@2")
        with pytest.raises(InjectedPlannerError):
            flaky.plan(CONTEXT, start_index=0)
        with pytest.raises(PlannerTimeoutError):
            flaky.plan(CONTEXT, start_index=4)
        plan = flaky.plan(CONTEXT, start_index=8)
        assert plan.strategy == "stub"

    def test_time_offset_shifts_schedule_frame(self):
        # Absolute decision index 106, schedule written test-relative.
        _, flaky = make("planner_error@6", time_offset=100)
        with pytest.raises(InjectedPlannerError):
            flaky.plan(CONTEXT, start_index=100)


class TestDelegation:
    def test_name_and_attributes_delegate(self):
        inner, flaky = make("planner_error@6")
        assert flaky.name == "stub"
        assert flaky.extra == "delegated"

    def test_non_planner_kinds_ignored(self):
        _, flaky = make("nan@6,node_crash@6")
        plan = flaky.plan(CONTEXT, start_index=0)
        assert plan.strategy == "stub"
