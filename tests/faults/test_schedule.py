"""Tests for the fault schedule: events, spec grammar, seeded sampling."""

import pytest

from repro.faults import (
    ALL_KINDS,
    CLUSTER_KINDS,
    PLANNER_KINDS,
    TELEMETRY_KINDS,
    FaultEvent,
    FaultSchedule,
)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(time_index=0, kind="gremlin")

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            FaultEvent(time_index=-1, kind="nan")

    def test_parameter_defaults(self):
        assert FaultEvent(0, "spike").parameter == 10.0
        assert FaultEvent(0, "spike", param=3.0).parameter == 3.0
        assert FaultEvent(0, "warmup_stall").parameter == 10.0
        assert FaultEvent(0, "nan").parameter == 1.0

    def test_kind_sets_partition(self):
        assert TELEMETRY_KINDS | PLANNER_KINDS | CLUSTER_KINDS == ALL_KINDS
        assert not TELEMETRY_KINDS & PLANNER_KINDS
        assert not TELEMETRY_KINDS & CLUSTER_KINDS
        assert not PLANNER_KINDS & CLUSTER_KINDS


class TestParse:
    def test_single_event(self):
        schedule = FaultSchedule.parse("nan@12")
        assert len(schedule) == 1
        assert schedule.events[0] == FaultEvent(12, "nan")

    def test_param(self):
        (event,) = FaultSchedule.parse("spike@30:8").events
        assert event.kind == "spike"
        assert event.parameter == 8.0

    def test_range_with_step(self):
        schedule = FaultSchedule.parse("drop@40..60/5")
        assert [e.time_index for e in schedule] == [40, 45, 50, 55, 60]

    def test_range_default_step_is_every_interval(self):
        assert len(FaultSchedule.parse("nan@3..6")) == 4

    def test_multiple_clauses(self):
        schedule = FaultSchedule.parse("node_crash@18,provision_fail@20")
        assert schedule.counts() == {"node_crash": 1, "provision_fail": 1}

    def test_events_sorted_by_time(self):
        schedule = FaultSchedule.parse("nan@30,drop@10,spike@20")
        assert [e.time_index for e in schedule] == [10, 20, 30]

    @pytest.mark.parametrize(
        "spec", ["nan", "nan@", "@12", "nan@12..", "wat@3", "nan@5..3", "nan@1..9/0"]
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            FaultSchedule.parse(spec)

    def test_spec_roundtrip(self):
        schedule = FaultSchedule.parse("nan@12,spike@30:8,node_crash@18")
        assert FaultSchedule.parse(schedule.spec) == schedule


class TestRandom:
    RATES = {"nan": 0.1, "planner_error": 0.05, "node_crash": 0.02}

    def test_same_seed_is_identical(self):
        a = FaultSchedule.random(500, self.RATES, seed=7)
        b = FaultSchedule.random(500, self.RATES, seed=7)
        assert a == b
        assert len(a) > 0

    def test_different_seeds_differ(self):
        a = FaultSchedule.random(500, self.RATES, seed=7)
        b = FaultSchedule.random(500, self.RATES, seed=8)
        assert a != b

    def test_rate_roughly_respected(self):
        schedule = FaultSchedule.random(5000, {"nan": 0.1}, seed=0)
        assert 350 < schedule.counts()["nan"] < 650

    def test_params_attached(self):
        schedule = FaultSchedule.random(
            200, {"spike": 0.2}, seed=1, params={"spike": 4.0}
        )
        assert all(e.parameter == 4.0 for e in schedule)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(10, {"nan": 1.5})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSchedule.random(10, {"gremlin": 0.1})


class TestViews:
    def test_layer_views_partition_events(self):
        schedule = FaultSchedule.parse(
            "nan@1,drop@2,planner_error@3,planner_timeout@4,node_crash@5"
        )
        assert len(schedule.telemetry) == 2
        assert len(schedule.planner) == 2
        assert len(schedule.cluster) == 1
        total = (
            len(schedule.telemetry) + len(schedule.planner) + len(schedule.cluster)
        )
        assert total == len(schedule)

    def test_at_lookup(self):
        schedule = FaultSchedule.parse("nan@5,drop@5,spike@9")
        assert {e.kind for e in schedule.at(5)} == {"nan", "drop"}
        assert schedule.at(6) == ()

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule.parse("nan@0")
