"""Tests for the declarative alert-rule engine."""

import pytest

from repro.obs import (
    Alert,
    AlertEngine,
    AlertRule,
    InMemorySink,
    MetricsRegistry,
    default_rules,
    parse_rule,
    using_registry,
)


def window_record(**overrides):
    record = {
        "kind": "model_health",
        "name": "monitor.window",
        "window": 0,
        "end_index": 23,
        "coverage": {"0.5": 0.5, "0.9": 0.9},
        "calibration_error": 0.02,
        "wql": {"0.5": 0.1, "0.9": 0.05},
        "mean_wql": 0.075,
        "mape": 0.1,
        "drift_score": 1.0,
        "drift_events": 0,
        "violation_rate": 0.0,
    }
    record.update(overrides)
    return record


class TestParseRule:
    def test_full_grammar(self):
        rule = parse_rule("coverage@0.9 < 0.8 for 12")
        assert rule.metric == "coverage"
        assert rule.level == 0.9
        assert rule.op == "<"
        assert rule.threshold == 0.8
        assert rule.for_windows == 12
        assert rule.severity == "warning"

    def test_minimal_grammar(self):
        rule = parse_rule("drift_score > 25")
        assert rule.metric == "drift_score"
        assert rule.level is None
        assert rule.for_windows == 1

    def test_all_comparators(self):
        for op in ("<", "<=", ">", ">="):
            assert parse_rule(f"mape {op} 0.5").op == op

    def test_severity_passthrough(self):
        assert parse_rule("mape > 0.5", severity="critical").severity == "critical"

    def test_roundtrip_through_spec(self):
        for spec in ("coverage@0.9 < 0.75 for 2", "violation_rate > 0.2"):
            assert parse_rule(spec).spec == spec

    def test_rejects_garbage(self):
        for bad in ("", "coverage", "coverage < ", "coverage ~ 0.5", "< 0.8"):
            with pytest.raises(ValueError, match="cannot parse alert rule"):
                parse_rule(bad)


class TestAlertRule:
    def test_per_level_lookup(self):
        rule = AlertRule(metric="coverage", level=0.9, op="<", threshold=0.8)
        assert rule.value_from(window_record()) == 0.9
        assert rule.value_from(window_record(coverage={"0.5": 0.4})) is None

    def test_dict_metric_without_level_is_skipped(self):
        rule = AlertRule(metric="coverage", op="<", threshold=0.8)
        assert rule.value_from(window_record()) is None

    def test_scalar_lookup(self):
        rule = AlertRule(metric="mape", op=">", threshold=0.5)
        assert rule.value_from(window_record(mape=0.7)) == 0.7
        assert rule.value_from({"kind": "model_health"}) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            AlertRule(metric="mape", op="~", threshold=0.5)
        with pytest.raises(ValueError):
            AlertRule(metric="mape", op=">", threshold=0.5, for_windows=0)

    def test_default_name_is_spec(self):
        rule = AlertRule(metric="coverage", level=0.9, op="<", threshold=0.8)
        assert rule.name == "coverage@0.9 < 0.8"


class TestAlertEngine:
    def test_fires_after_streak(self):
        engine = AlertEngine([parse_rule("coverage@0.9 < 0.8 for 3")])
        for i in range(2):
            assert engine.evaluate(window_record(coverage={"0.9": 0.5})) == []
        fired = engine.evaluate(window_record(coverage={"0.9": 0.5}))
        assert len(fired) == 1
        assert isinstance(fired[0], Alert)
        assert fired[0].value == 0.5

    def test_streak_resets_on_recovery(self):
        engine = AlertEngine([parse_rule("coverage@0.9 < 0.8 for 2")])
        engine.evaluate(window_record(coverage={"0.9": 0.5}))
        engine.evaluate(window_record(coverage={"0.9": 0.95}))  # recovers
        engine.evaluate(window_record(coverage={"0.9": 0.5}))
        assert engine.alerts == []

    def test_fires_once_per_breach_episode(self):
        engine = AlertEngine([parse_rule("mape > 0.5")])
        for _ in range(5):
            engine.evaluate(window_record(mape=0.9))
        assert len(engine.alerts) == 1
        # Recovery re-arms the rule.
        engine.evaluate(window_record(mape=0.1))
        engine.evaluate(window_record(mape=0.9))
        assert len(engine.alerts) == 2

    def test_missing_metric_does_not_break_streak_state(self):
        engine = AlertEngine([parse_rule("violation_rate > 0.2 for 2")])
        engine.evaluate(window_record(violation_rate=0.5))
        record = window_record()
        del record["violation_rate"]
        engine.evaluate(record)  # metric absent: rule skipped, streak kept
        fired = engine.evaluate(window_record(violation_rate=0.5))
        assert len(fired) == 1

    def test_emits_events_and_counters(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        engine = AlertEngine([parse_rule("mape > 0.5", severity="critical")])
        with using_registry(registry):
            engine.evaluate(window_record(mape=0.9, window=4, end_index=119))
        alert_events = [r for r in sink.records if r.get("kind") == "alert"]
        assert len(alert_events) == 1
        event = alert_events[0]
        assert event["severity"] == "critical"
        assert event["window"] == 4
        assert event["end_index"] == 119
        assert "mape" in event["message"]
        counters = registry.snapshot()["counters"]
        assert counters['alerts.fired{rule=mape > 0.5}'] == 1

    def test_alert_records_roundtrip(self):
        engine = AlertEngine([parse_rule("mape > 0.5")])
        engine.evaluate(window_record(mape=0.9))
        records = engine.alert_records()
        assert len(records) == 1
        assert records[0]["kind"] == "alert"
        assert records[0]["value"] == 0.9


class TestDefaultRules:
    def test_shape(self):
        rules = default_rules(nominal_level=0.9)
        metrics = {rule.metric for rule in rules}
        assert metrics == {"coverage", "drift_events", "violation_rate"}
        coverage = next(r for r in rules if r.metric == "coverage")
        assert coverage.level == 0.9
        assert coverage.threshold == pytest.approx(0.75)
        drift = next(r for r in rules if r.metric == "drift_events")
        assert drift.severity == "critical"

    def test_threshold_clamped_at_zero(self):
        coverage = next(
            r for r in default_rules(nominal_level=0.1) if r.metric == "coverage"
        )
        assert coverage.threshold == 0.0
