"""Tests for the streaming model-health monitors and drift detectors."""

import numpy as np
import pytest

from repro.forecast.base import QuantileForecast
from repro.obs import (
    CUSUM,
    AlertEngine,
    AlertRule,
    InMemorySink,
    MetricsRegistry,
    ModelHealthMonitor,
    PageHinkley,
    using_registry,
)

LEVELS = np.array([0.1, 0.5, 0.9])


def well_calibrated_step(rng, center=100.0, spread=20.0):
    """Quantile values and an actual drawn from the matching normal."""
    from scipy import stats

    values = center + stats.norm.ppf(LEVELS) * spread
    actual = rng.normal(center, spread)
    return values, max(actual, 0.0)


class TestPageHinkley:
    def test_no_fire_on_stationary_stream(self):
        # Spread-normalised residuals of a calibrated forecaster have
        # std ~ sigma / (q0.9 - q0.1) ~ 0.4; the default threshold is
        # tuned for that scale.
        rng = np.random.default_rng(0)
        detector = PageHinkley()
        fired = [detector.update(x) for x in rng.normal(0, 0.4, 500)]
        assert not any(fired)

    def test_fires_on_upward_mean_shift(self):
        rng = np.random.default_rng(1)
        detector = PageHinkley()
        for x in rng.normal(0, 1, 200):
            assert not detector.update(x) or True  # warm stream
        fired_at = None
        for i, x in enumerate(rng.normal(4, 1, 100)):
            if detector.update(x):
                fired_at = i
                break
        assert fired_at is not None and fired_at < 30
        assert detector.fired_direction == "up"
        assert detector.fired_score > detector.threshold

    def test_fires_on_downward_shift_with_direction(self):
        rng = np.random.default_rng(2)
        detector = PageHinkley()
        for x in rng.normal(0, 1, 200):
            detector.update(x)
        fired = False
        for x in rng.normal(-4, 1, 100):
            if detector.update(x):
                fired = True
                break
        assert fired
        assert detector.fired_direction == "down"

    def test_resets_after_firing(self):
        detector = PageHinkley(min_samples=1)
        for _ in range(100):
            if detector.update(5.0):
                break
        assert detector.score == 0.0

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            PageHinkley(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkley(min_samples=0)


class TestCUSUM:
    def test_no_fire_on_stationary_stream(self):
        rng = np.random.default_rng(3)
        detector = CUSUM()
        assert not any(detector.update(x) for x in rng.normal(0, 0.3, 500))

    def test_fires_faster_on_abrupt_jump(self):
        detector = CUSUM()
        fired_at = None
        for i in range(50):
            if detector.update(3.0):
                fired_at = i
                break
        assert fired_at is not None and fired_at < 10
        assert detector.fired_direction == "up"

    def test_two_sided(self):
        detector = CUSUM()
        for _ in range(50):
            if detector.update(-3.0):
                break
        assert detector.fired_direction == "down"

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            CUSUM(threshold=-1.0)
        with pytest.raises(ValueError):
            CUSUM(drift=-0.1)


class TestModelHealthMonitorWindows:
    def test_windows_finalise_every_window_steps(self):
        monitor = ModelHealthMonitor(window=10, detectors=[])
        rng = np.random.default_rng(0)
        for t in range(35):
            values, actual = well_calibrated_step(rng)
            monitor.observe(LEVELS, values, actual, time_index=t)
        assert len(monitor.windows) == 3
        assert monitor.windows[0].steps == 10
        assert monitor.windows[0].start_index == 0
        assert monitor.windows[0].end_index == 9
        assert monitor.windows[2].end_index == 29
        assert monitor.steps_observed == 35

    def test_calibrated_forecasts_have_near_nominal_coverage(self):
        monitor = ModelHealthMonitor(window=400, detectors=[])
        rng = np.random.default_rng(7)
        for t in range(400):
            values, actual = well_calibrated_step(rng)
            monitor.observe(LEVELS, values, actual, time_index=t)
        window = monitor.windows[0]
        assert window.coverage["0.9"] == pytest.approx(0.9, abs=0.07)
        assert window.coverage["0.5"] == pytest.approx(0.5, abs=0.07)
        assert window.calibration_error < 0.1

    def test_systematic_undershoot_destroys_coverage(self):
        monitor = ModelHealthMonitor(window=20, detectors=[])
        values = np.array([10.0, 50.0, 90.0])  # forecasts far below actual
        for t in range(20):
            monitor.observe(LEVELS, values, 500.0, time_index=t)
        window = monitor.windows[0]
        assert all(cov == 0.0 for cov in window.coverage.values())
        assert window.calibration_error == pytest.approx(np.mean(LEVELS))
        assert window.mean_residual == pytest.approx(450.0)

    def test_wql_and_mape_match_offline_metrics(self):
        from repro.evaluation.metrics import mape as mape_metric
        from repro.evaluation.metrics import weighted_quantile_loss

        rng = np.random.default_rng(5)
        actuals, per_level = [], {tau: [] for tau in LEVELS}
        monitor = ModelHealthMonitor(window=30, detectors=[])
        for t in range(30):
            values, actual = well_calibrated_step(rng)
            monitor.observe(LEVELS, values, actual, time_index=t)
            actuals.append(actual)
            for tau, value in zip(LEVELS, values):
                per_level[tau].append(value)
        window = monitor.windows[0]
        target = np.array(actuals)
        for tau in LEVELS:
            expected = weighted_quantile_loss(
                target, np.array(per_level[tau]), float(tau)
            )
            assert window.wql[format(tau, "g")] == pytest.approx(expected)
        expected_mape = mape_metric(target, np.array(per_level[0.5]))
        assert window.mape == pytest.approx(expected_mape)

    def test_violation_rate_tracked_when_allocation_given(self):
        monitor = ModelHealthMonitor(window=4, detectors=[])
        values = np.array([90.0, 100.0, 110.0])
        # nodes=1, threshold=100 -> violation iff actual > 100
        for t, actual in enumerate([50.0, 150.0, 120.0, 80.0]):
            monitor.observe(
                LEVELS, values, actual, time_index=t, nodes=1, threshold=100.0
            )
        assert monitor.windows[0].violation_rate == pytest.approx(0.5)

    def test_coverage_series(self):
        monitor = ModelHealthMonitor(window=5, detectors=[])
        values = np.array([90.0, 100.0, 110.0])
        for t in range(10):
            actual = 0.0 if t < 5 else 1000.0  # first window covered, second not
            monitor.observe(LEVELS, values, actual, time_index=t)
        series = monitor.coverage_series(0.9)
        assert series.tolist() == [1.0, 0.0]

    def test_validates_window(self):
        with pytest.raises(ValueError):
            ModelHealthMonitor(window=0)


class TestModelHealthMonitorDrift:
    def test_drift_event_on_regime_shift(self):
        monitor = ModelHealthMonitor(window=50)
        rng = np.random.default_rng(11)
        for t in range(150):
            values, actual = well_calibrated_step(rng)
            monitor.observe(LEVELS, values, actual, time_index=t)
        pre_shift_events = [e for e in monitor.drift_events]
        for t in range(150, 250):
            values, _ = well_calibrated_step(rng)
            monitor.observe(LEVELS, values, 400.0, time_index=t)  # big shift up
        new_events = monitor.drift_events[len(pre_shift_events):]
        assert new_events, "regime shift must fire at least one drift event"
        assert all(e.time_index >= 150 for e in new_events)
        assert any(e.direction == "up" for e in new_events)

    def test_degenerate_zero_spread_forecast_does_not_crash(self):
        monitor = ModelHealthMonitor(window=5)
        values = np.array([100.0, 100.0, 100.0])
        for t in range(10):
            monitor.observe(LEVELS, values, 100.0, time_index=t)
        assert len(monitor.windows) == 2


class TestEventStream:
    def test_window_and_drift_events_reach_sinks(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        monitor = ModelHealthMonitor(window=10)
        with using_registry(registry):
            for t in range(200):
                values = np.array([90.0, 100.0, 110.0])
                actual = 100.0 if t < 100 else 500.0
                monitor.observe(LEVELS, values, actual, time_index=t)
        kinds = {(r["kind"], r["name"]) for r in sink.records}
        assert ("model_health", "monitor.window") in kinds
        assert ("model_health", "monitor.drift") in kinds
        window_records = [
            r for r in sink.records if r.get("name") == "monitor.window"
        ]
        assert len(window_records) == 20
        assert "coverage" in window_records[0]
        assert "ts" in window_records[0]
        # Gauges and counters mirror the latest window.
        snapshot = registry.snapshot()
        assert snapshot["counters"]["monitor.windows"] == 20
        assert any(k.startswith("monitor.coverage") for k in snapshot["gauges"])

    def test_monitor_alert_engine_fires_on_window_records(self):
        monitor = ModelHealthMonitor(
            window=5,
            detectors=[],
            alerts=AlertEngine(
                [AlertRule(metric="coverage", level=0.9, op="<", threshold=0.5)]
            ),
        )
        values = np.array([90.0, 100.0, 110.0])
        for t in range(5):
            monitor.observe(LEVELS, values, 1000.0, time_index=t)
        assert len(monitor.alerts.alerts) == 1
        assert monitor.alerts.alerts[0].value == 0.0


class TestObserveForecast:
    def test_feeds_whole_window(self):
        monitor = ModelHealthMonitor(window=6, detectors=[])
        forecast = QuantileForecast(
            levels=LEVELS,
            values=np.tile(np.array([[90.0], [100.0], [110.0]]), (1, 6)),
        )
        monitor.observe_forecast(forecast, np.full(6, 95.0), start_index=40)
        assert len(monitor.windows) == 1
        assert monitor.windows[0].start_index == 40
        assert monitor.windows[0].end_index == 45
        assert monitor.windows[0].coverage["0.9"] == 1.0
        assert monitor.windows[0].coverage["0.1"] == 0.0

    def test_truncates_to_shorter_actuals(self):
        monitor = ModelHealthMonitor(window=3, detectors=[])
        forecast = QuantileForecast(
            levels=LEVELS,
            values=np.tile(np.array([[90.0], [100.0], [110.0]]), (1, 6)),
        )
        monitor.observe_forecast(forecast, np.full(3, 95.0))
        assert monitor.steps_observed == 3


class TestLevelOrderingAndTies:
    """Regression tests: shuffled quantile grids and exact-tie semantics."""

    def test_shuffled_levels_match_sorted_levels(self):
        sorted_monitor = ModelHealthMonitor(window=10, detectors=[])
        shuffled_monitor = ModelHealthMonitor(window=10, detectors=[])
        rng = np.random.default_rng(17)
        order = np.array([2, 0, 1])  # 0.9, 0.1, 0.5
        for t in range(10):
            values, actual = well_calibrated_step(rng)
            sorted_monitor.observe(LEVELS, values, actual, time_index=t)
            shuffled_monitor.observe(
                LEVELS[order], values[order], actual, time_index=t
            )
        a, b = sorted_monitor.windows[0], shuffled_monitor.windows[0]
        assert a.coverage == b.coverage
        assert a.wql == b.wql
        assert a.mean_residual == pytest.approx(b.mean_residual)
        assert a.calibration_error == pytest.approx(b.calibration_error)

    def test_shuffled_levels_keep_spread_normalisation(self):
        # The drift scale is q_max - q_min; an unsorted grid must not
        # flip its sign (which would invert every drift direction).
        monitor = ModelHealthMonitor(window=50)
        values = np.array([110.0, 90.0, 100.0])  # for levels 0.9, 0.1, 0.5
        for t in range(60):
            monitor.observe(
                np.array([0.9, 0.1, 0.5]), values, 400.0, time_index=t
            )
        assert monitor.drift_events
        assert all(e.direction == "up" for e in monitor.drift_events)

    def test_actual_equal_to_quantile_counts_as_covered(self):
        # Quantile coverage is P(X <= q) >= tau: a tie satisfies it.
        monitor = ModelHealthMonitor(window=4, detectors=[])
        values = np.array([90.0, 100.0, 110.0])
        for t in range(4):
            monitor.observe(LEVELS, values, 110.0, time_index=t)
        window = monitor.windows[0]
        assert window.coverage["0.9"] == 1.0
        assert window.coverage["0.5"] == 0.0

    def test_tie_at_every_level_is_fully_covered(self):
        monitor = ModelHealthMonitor(window=4, detectors=[])
        values = np.array([90.0, 100.0, 110.0])
        for t in range(4):
            monitor.observe(LEVELS, values, 90.0, time_index=t)
        assert all(
            cov == 1.0 for cov in monitor.windows[0].coverage.values()
        )


class TestDetectorStateRoundTrip:
    """Drift detectors must checkpoint/restore mid-episode, after firing."""

    @pytest.mark.parametrize("make", [PageHinkley, CUSUM])
    def test_round_trip_after_firing_preserves_behavior(self, make):
        rng = np.random.default_rng(23)
        detector = make()
        for x in rng.normal(0, 1, 200):
            detector.update(x)
        fired = False
        for x in rng.normal(4, 1, 100):
            if detector.update(x):
                fired = True
                break
        assert fired, "detector must fire before the snapshot"

        clone = make()
        clone.load_state_dict(detector.state_dict())
        assert clone.fired_score == detector.fired_score
        assert clone.fired_direction == detector.fired_direction

        # Continue both on an identical stream: decisions, scores, and
        # re-fires must stay in lockstep.
        tail = np.concatenate(
            [rng.normal(0, 1, 150), rng.normal(-4, 1, 80)]
        )
        original = [detector.update(x) for x in tail]
        restored = [clone.update(x) for x in tail]
        assert original == restored
        assert any(original), "the downward shift must re-fire"
        assert clone.state_dict() == detector.state_dict()

    @pytest.mark.parametrize("make", [PageHinkley, CUSUM])
    def test_round_trip_is_json_safe(self, make):
        import json

        detector = make()
        for _ in range(20):
            detector.update(5.0)
        state = json.loads(json.dumps(detector.state_dict()))
        clone = make()
        clone.load_state_dict(state)
        assert clone.state_dict() == detector.state_dict()
