"""Prometheus text exposition: rendering, escaping, and the validator."""

import pytest

from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    PROMETHEUS_CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    using_registry,
)


def live_snapshot():
    registry = MetricsRegistry(sinks=[InMemorySink()])
    with using_registry(registry):
        registry.counter("runtime.decisions", source="predictive").inc(3)
        registry.counter("runtime.decisions", source="degraded").inc()
        registry.gauge("runtime.nodes_requested").set(7)
        hist = registry.histogram("forecast.epoch_seconds")
        for v in (0.1, 0.2, 0.3):
            hist.observe(v)
        with registry.span("runtime.step"):
            with registry.span("plan"):
                pass
    return registry.snapshot()


class TestRender:
    def test_counters_become_total_families(self):
        text = render_prometheus(live_snapshot())
        assert "# TYPE repro_runtime_decisions_total counter" in text
        assert 'repro_runtime_decisions_total{source="predictive"} 3.0' in text
        assert 'repro_runtime_decisions_total{source="degraded"} 1.0' in text

    def test_gauges_map_directly(self):
        text = render_prometheus(live_snapshot())
        assert "# TYPE repro_runtime_nodes_requested gauge" in text
        assert "repro_runtime_nodes_requested 7.0" in text

    def test_histograms_export_as_summaries(self):
        text = render_prometheus(live_snapshot())
        assert "# TYPE repro_forecast_epoch_seconds summary" in text
        assert 'repro_forecast_epoch_seconds{quantile="0.5"}' in text
        assert "repro_forecast_epoch_seconds_count 3" in text
        assert "repro_forecast_epoch_seconds_sum" in text

    def test_spans_fold_into_one_duration_family(self):
        text = render_prometheus(live_snapshot())
        assert "# TYPE repro_span_duration_seconds summary" in text
        assert 'path="runtime.step/plan"' in text
        assert 'path="runtime.step"' in text

    def test_names_are_sanitised(self):
        snapshot = {"counters": {"weird.name-with/slashes": 1.0}}
        text = render_prometheus(snapshot)
        assert "repro_weird_name_with_slashes_total 1.0" in text

    def test_label_values_escaped(self):
        snapshot = {"counters": {'c{rule=a"b\\c}': 2.0}}
        text = render_prometheus(snapshot)
        assert 'rule="a\\"b\\\\c"' in text

    def test_custom_prefix_and_empty_snapshot(self):
        assert render_prometheus({}) == ""
        text = render_prometheus({"gauges": {"g": 1.0}}, prefix="acme")
        assert "acme_g 1.0" in text

    def test_none_gauges_skipped(self):
        text = render_prometheus({"gauges": {"unset": None, "set": 2.0}})
        assert "unset" not in text
        assert "repro_set 2.0" in text

    def test_empty_reservoir_quantiles_omitted(self):
        # A histogram summary with count>0 but unknowable quantiles
        # (merged moments without samples) must not render NaN samples.
        snapshot = {
            "histograms": {
                "h": {"count": 5, "sum": 1.0, "p50": None, "p90": None,
                      "p99": None}
            }
        }
        text = render_prometheus(snapshot)
        assert "quantile" not in text
        assert "repro_h_count 5" in text
        assert "repro_h_sum 1.0" in text
        parse_exposition(text)  # stays well-formed

    def test_non_finite_values_use_prometheus_literals(self):
        text = render_prometheus(
            {"gauges": {"inf": float("inf"), "nan": float("nan")}}
        )
        assert "repro_inf +Inf" in text
        assert "repro_nan NaN" in text

    def test_content_type_constant(self):
        assert "version=0.0.4" in PROMETHEUS_CONTENT_TYPE


class TestParseExposition:
    def test_round_trip(self):
        families = parse_exposition(render_prometheus(live_snapshot()))
        assert families["repro_runtime_decisions_total"][
            '{source="predictive"}'
        ] == 3.0
        assert families["repro_runtime_nodes_requested"][""] == 7.0
        assert "repro_span_duration_seconds" in families

    def test_rejects_malformed_sample(self):
        with pytest.raises(ValueError, match="malformed sample"):
            parse_exposition("this is not a metric\n")

    def test_rejects_garbage_value(self):
        with pytest.raises(ValueError):
            parse_exposition("metric_name banana\n")

    def test_rejects_malformed_comment(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_exposition("# NOT-A-DIRECTIVE x\n")

    def test_accepts_inf_and_nan_literals(self):
        families = parse_exposition("m_inf +Inf\nm_nan NaN\n")
        assert families["m_inf"][""] == float("inf")
        assert families["m_nan"][""] != families["m_nan"][""]  # NaN

    def test_blank_lines_ignored(self):
        assert parse_exposition("\n\n") == {}
