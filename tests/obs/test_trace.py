"""TraceCollector lifecycle, registry integration, and timeline rendering."""

import pytest

from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    TraceCollector,
    render_trace_timeline,
    using_registry,
)


class TestLifecycle:
    def test_begin_end_produces_a_trace(self):
        collector = TraceCollector()
        collector.begin(42)
        assert collector.active
        assert collector.trace_id == 42
        trace = collector.end("ok")
        assert not collector.active
        assert trace["trace_id"] == 42
        assert trace["status"] == "ok"
        assert trace["duration_s"] >= 0.0
        assert collector.traces_finished == 1
        assert list(collector.finished) == [trace]

    def test_end_without_begin_is_noop(self):
        collector = TraceCollector()
        assert collector.end() is None
        assert collector.traces_finished == 0

    def test_begin_ends_a_dangling_trace(self):
        collector = TraceCollector()
        collector.begin(1)
        collector.begin(2)
        assert collector.traces_finished == 1
        assert collector.finished[-1]["trace_id"] == 1
        assert collector.trace_id == 2

    def test_ring_evicts_oldest(self):
        collector = TraceCollector(max_traces=2)
        for tick in range(4):
            collector.begin(tick)
            collector.end()
        assert [t["trace_id"] for t in collector.finished] == [2, 3]

    def test_invalid_ring_size(self):
        with pytest.raises(ValueError):
            TraceCollector(max_traces=0)

    def test_drain_empties_the_ring(self):
        collector = TraceCollector()
        collector.begin(1)
        collector.end()
        assert [t["trace_id"] for t in collector.drain()] == [1]
        assert collector.drain() == []

    def test_traces_limit(self):
        collector = TraceCollector()
        for tick in range(5):
            collector.begin(tick)
            collector.end()
        assert [t["trace_id"] for t in collector.traces(2)] == [3, 4]


class TestSpans:
    def test_span_nesting_and_parent_ids(self):
        collector = TraceCollector()
        collector.begin(7)
        outer = collector.open_span("step", {})
        inner = collector.open_span("plan", {})
        assert inner["parent_id"] == outer["span_id"]
        collector.close_span(inner, 0.1, "ok")
        collector.close_span(outer, 0.2, "ok")
        trace = collector.end()
        assert [s["name"] for s in trace["spans"]] == ["step", "plan"]
        assert trace["spans"][0]["parent_id"] is None

    def test_span_ids_are_deterministic(self):
        def run():
            collector = TraceCollector(id_prefix="w0.")
            collector.begin(1)
            a = collector.open_span("a", {})
            collector.close_span(a, 0.0, "ok")
            b = collector.open_span("b", {})
            collector.close_span(b, 0.0, "ok")
            return [s["span_id"] for s in collector.end()["spans"]]

        assert run() == run() == ["w0.1", "w0.2"]

    def test_error_status_propagates_to_trace(self):
        collector = TraceCollector()
        collector.begin(1)
        span = collector.open_span("boom", {})
        collector.close_span(span, 0.0, "error")
        trace = collector.end("ok")
        assert trace["status"] == "error"
        assert trace["spans"][0]["status"] == "error"

    def test_open_spans_closed_as_error_at_end(self):
        collector = TraceCollector()
        collector.begin(1)
        collector.open_span("leaked", {})
        trace = collector.end("error")
        assert trace["spans"][0]["status"] == "error"
        assert trace["spans"][0]["duration_s"] >= 0.0

    def test_open_span_outside_trace_returns_none(self):
        collector = TraceCollector()
        assert collector.open_span("orphan", {}) is None
        collector.close_span(None, 0.0, "ok")  # must not raise


class TestRegistryIntegration:
    def test_registry_spans_feed_the_tracer(self):
        registry = MetricsRegistry(sinks=[InMemorySink()])
        collector = TraceCollector()
        assert registry.set_tracer(collector) is None
        collector.begin(9)
        with using_registry(registry):
            with registry.span("runtime.step"):
                with registry.span("plan"):
                    pass
        trace = collector.end()
        names = [s["name"] for s in trace["spans"]]
        assert names == ["runtime.step", "runtime.step/plan"]
        child = trace["spans"][1]
        assert child["parent_id"] == trace["spans"][0]["span_id"]
        # Histograms still aggregate alongside the trace.
        snap = registry.snapshot()
        assert snap["spans"]["runtime.step/plan"]["count"] == 1

    def test_span_error_status_recorded(self):
        registry = MetricsRegistry(sinks=[InMemorySink()])
        collector = TraceCollector()
        registry.set_tracer(collector)
        collector.begin(1)
        with pytest.raises(RuntimeError):
            with registry.span("explode"):
                raise RuntimeError("boom")
        trace = collector.end()
        assert trace["status"] == "error"
        assert trace["spans"][0]["status"] == "error"

    def test_set_tracer_returns_previous(self):
        registry = MetricsRegistry()
        a, b = TraceCollector(), TraceCollector()
        assert registry.set_tracer(a) is None
        assert registry.set_tracer(b) is a
        assert registry.tracer is b

    def test_state_dict_ships_finished_traces(self):
        registry = MetricsRegistry(sinks=[InMemorySink()])
        collector = TraceCollector()
        registry.set_tracer(collector)
        collector.begin(3)
        with using_registry(registry):
            with registry.span("work"):
                pass
        collector.end()
        state = registry.state_dict()
        assert [t["trace_id"] for t in state["traces"]] == [3]
        assert not collector.finished  # drained into the state dict


class TestAbsorb:
    def test_absorb_into_matching_live_trace(self):
        parent = TraceCollector()
        parent.begin(5)
        anchor = parent.open_span("backtest", {})

        worker = TraceCollector(id_prefix="w0.")
        worker.begin(5)
        span = worker.open_span("predict", {})
        worker.close_span(span, 0.01, "ok")
        finished = worker.end()

        parent.absorb(finished, span_prefix="workers/w0")
        parent.close_span(anchor, 0.1, "ok")
        trace = parent.end()
        merged = [s for s in trace["spans"] if s["name"].startswith("workers/")]
        assert len(merged) == 1
        assert merged[0]["name"] == "workers/w0/predict"
        assert merged[0]["span_id"] == "w0.1"
        # Re-rooted: the worker's root span hangs off the parent's anchor.
        assert merged[0]["parent_id"] == anchor["span_id"]
        assert merged[0]["start_s"] >= 0.0

    def test_absorb_without_matching_trace_keeps_whole(self):
        parent = TraceCollector()
        worker = TraceCollector(id_prefix="w1.")
        worker.begin(99)
        worker.end()
        parent.absorb(worker.finished[-1])
        assert parent.finished[-1]["trace_id"] == 99

    def test_absorb_propagates_error(self):
        parent = TraceCollector()
        parent.begin(5)
        parent.absorb({"trace_id": 5, "status": "error", "spans": []})
        assert parent.end()["status"] == "error"


class TestTimeline:
    def sample_trace(self):
        return {
            "trace_id": 17,
            "status": "ok",
            "duration_s": 0.1,
            "spans": [
                {"span_id": "1", "parent_id": None, "name": "runtime.step",
                 "start_s": 0.0, "duration_s": 0.1, "status": "ok"},
                {"span_id": "2", "parent_id": "1", "name": "plan",
                 "start_s": 0.0, "duration_s": 0.08, "status": "ok"},
                {"span_id": "3", "parent_id": "1", "name": "observe",
                 "start_s": 0.09, "duration_s": 0.01, "status": "error"},
            ],
        }

    def test_header_and_rows(self):
        out = render_trace_timeline(self.sample_trace())
        lines = out.splitlines()
        assert lines[0].startswith("trace 17 [ok]")
        assert "3 spans" in lines[0]
        assert any("runtime.step" in line for line in lines)
        assert any("plan" in line for line in lines)

    def test_critical_path_marked(self):
        out = render_trace_timeline(self.sample_trace())
        starred = [l for l in out.splitlines() if l.startswith("*")]
        assert any("runtime.step" in l for l in starred)
        assert any("plan" in l for l in starred)
        assert not any("observe" in l for l in starred)

    def test_error_span_flagged(self):
        out = render_trace_timeline(self.sample_trace())
        (line,) = [l for l in out.splitlines() if "observe" in l]
        assert line.rstrip().endswith("!")

    def test_empty_trace_renders_header_only(self):
        out = render_trace_timeline(
            {"trace_id": 1, "status": "ok", "duration_s": 0.0, "spans": []}
        )
        assert out == "trace 1 [ok] 0us - 0 spans"

    def test_pure_ascii(self):
        out = render_trace_timeline(self.sample_trace())
        out.encode("ascii")  # raises if any non-ASCII slipped in
