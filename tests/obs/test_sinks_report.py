"""Tests for telemetry sinks and the event-stream summarizer."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Sink,
    TableSink,
    format_summary,
    read_jsonl,
    summarize_records,
)


class TestInMemorySink:
    def test_copies_records(self):
        sink = InMemorySink()
        record = {"kind": "counter", "name": "c", "labels": {}}
        sink.emit(record)
        record["name"] = "mutated"
        assert sink.records[0]["name"] == "c"

    def test_structural_sink_protocol(self):
        # All shipped sinks satisfy the Sink protocol structurally.
        for sink in (InMemorySink(), TableSink(stream=io.StringIO())):
            assert isinstance(sink, Sink)


class TestJsonlSink:
    def test_round_trip_through_read_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry(time_source=lambda: 1.0)
        with JsonlSink(path) as sink:
            registry.add_sink(sink)
            registry.counter("decisions", strategy="tft").inc()
            registry.gauge("nodes").set(4)
            with registry.span("plan"):
                pass
        assert sink.records_written == 3
        records = read_jsonl(path)
        assert len(records) == 3
        kinds = {r["kind"] for r in records}
        assert kinds == {"counter", "gauge", "span"}
        assert records[0]["labels"] == {"strategy": "tft"}

    def test_numpy_values_serialised(self, tmp_path):
        path = tmp_path / "np.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "gauge", "value": np.float64(1.5), "n": np.int64(2)})
        record = read_jsonl(path)[0]
        assert record["value"] == 1.5
        assert record["n"] == 2

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"kind": "counter"})

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()


class TestReadJsonl:
    def test_skips_malformed_and_blank_lines(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            '{"kind": "counter", "name": "a", "value": 1}\n'
            "not json at all\n"
            "\n"
            "[1, 2, 3]\n"
            '{"kind": "gauge", "name": "b", "value": 2}\n'
        )
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["a", "b"]


class TestTableSink:
    def test_prints_summary_on_close(self):
        stream = io.StringIO()
        sink = TableSink(stream=stream)
        registry = MetricsRegistry(sinks=[sink])
        registry.counter("decisions").inc()
        sink.close()
        out = stream.getvalue()
        assert "telemetry summary" in out
        assert "decisions" in out

    def test_silent_when_empty(self):
        stream = io.StringIO()
        TableSink(stream=stream).close()
        assert stream.getvalue() == ""


class TestSummarizeRecords:
    def _capture(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        return registry, sink

    def test_counter_last_value_wins(self):
        registry, sink = self._capture()
        counter = registry.counter("hits")
        for _ in range(5):
            counter.inc()
        summary = summarize_records(sink.records)
        assert summary.counters["hits"] == 5.0

    def test_counter_total_sums_label_sets(self):
        registry, sink = self._capture()
        registry.counter("steps", strategy="a").inc(3)
        registry.counter("steps", strategy="b").inc(4)
        registry.counter("stepsize").inc(100)  # prefix, not the same counter
        summary = summarize_records(sink.records)
        assert summary.counter_total("steps") == 7.0

    def test_gauge_and_histogram_and_span(self):
        registry, sink = self._capture()
        registry.gauge("nodes").set(3)
        registry.gauge("nodes").set(5)
        registry.histogram("lat").observe(1.0)
        registry.histogram("lat").observe(3.0)
        with registry.span("plan"):
            pass
        summary = summarize_records(sink.records)
        assert summary.gauges["nodes"] == 5.0
        assert summary.histograms["lat"].count == 2
        assert summary.histograms["lat"].mean == 2.0
        assert summary.spans["plan"].count == 1
        assert summary.records == len(sink.records)

    def test_format_summary_sections(self):
        registry, sink = self._capture()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        with registry.span("s"):
            pass
        text = format_summary(summarize_records(sink.records))
        assert "phase timings (spans)" in text
        assert "counters" in text
        assert "gauges (last value)" in text
        assert "histograms" in text

    def test_round_trips_json_encoding(self):
        registry, sink = self._capture()
        registry.counter("c", k="v").inc()
        encoded = [json.loads(json.dumps(r)) for r in sink.records]
        summary = summarize_records(encoded)
        assert summary.counters["c{k=v}"] == 1.0
