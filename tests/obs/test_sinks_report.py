"""Tests for telemetry sinks and the event-stream summarizer."""

import io
import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.obs import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    Sink,
    TableSink,
    format_model_health,
    format_summary,
    read_jsonl,
    summarize_model_health,
    summarize_records,
)


class TestInMemorySink:
    def test_copies_records(self):
        sink = InMemorySink()
        record = {"kind": "counter", "name": "c", "labels": {}}
        sink.emit(record)
        record["name"] = "mutated"
        assert sink.records[0]["name"] == "c"

    def test_structural_sink_protocol(self):
        # All shipped sinks satisfy the Sink protocol structurally.
        for sink in (InMemorySink(), TableSink(stream=io.StringIO())):
            assert isinstance(sink, Sink)


class TestJsonlSink:
    def test_round_trip_through_read_jsonl(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry(time_source=lambda: 1.0)
        with JsonlSink(path) as sink:
            registry.add_sink(sink)
            registry.counter("decisions", strategy="tft").inc()
            registry.gauge("nodes").set(4)
            with registry.span("plan"):
                pass
        assert sink.records_written == 3
        records = read_jsonl(path)
        assert len(records) == 3
        kinds = {r["kind"] for r in records}
        assert kinds == {"counter", "gauge", "span"}
        assert records[0]["labels"] == {"strategy": "tft"}

    def test_numpy_values_serialised(self, tmp_path):
        path = tmp_path / "np.jsonl"
        with JsonlSink(path) as sink:
            sink.emit({"kind": "gauge", "value": np.float64(1.5), "n": np.int64(2)})
        record = read_jsonl(path)[0]
        assert record["value"] == 1.5
        assert record["n"] == 2

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        with pytest.raises(ValueError):
            sink.emit({"kind": "counter"})

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()

    def test_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(tmp_path / "x.jsonl", flush_every=0)

    def test_aborted_writer_leaves_every_record_readable(self, tmp_path):
        # A run killed mid-stream (OOM, SIGKILL, crash) must not lose
        # telemetry: with the default flush_every=1 each record hits the
        # OS before the next emit, so os._exit without close loses nothing.
        path = tmp_path / "aborted.jsonl"
        import repro

        src_dir = str(Path(repro.__file__).parents[1])
        script = (
            "import os, sys\n"
            f"sys.path.insert(0, {repr(src_dir)})\n"
            "from repro.obs import JsonlSink\n"
            f"sink = JsonlSink({repr(str(path))})\n"
            "for i in range(25):\n"
            "    sink.emit({'kind': 'counter', 'name': 'c', 'value': i})\n"
            "os._exit(1)  # simulate a hard crash: no close(), no atexit\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True
        )
        assert result.returncode == 1, result.stderr
        records = read_jsonl(path)
        assert len(records) == 25
        assert [r["value"] for r in records] == list(range(25))

    def test_flush_every_batches_but_close_flushes_tail(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        sink = JsonlSink(path, flush_every=10)
        for i in range(25):
            sink.emit({"kind": "counter", "value": i})
        sink.close()
        assert len(read_jsonl(path)) == 25


class TestReadJsonl:
    def test_skips_malformed_and_blank_lines(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        path.write_text(
            '{"kind": "counter", "name": "a", "value": 1}\n'
            "not json at all\n"
            "\n"
            "[1, 2, 3]\n"
            '{"kind": "gauge", "name": "b", "value": 2}\n'
        )
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["a", "b"]


class TestTableSink:
    def test_prints_summary_on_close(self):
        stream = io.StringIO()
        sink = TableSink(stream=stream)
        registry = MetricsRegistry(sinks=[sink])
        registry.counter("decisions").inc()
        sink.close()
        out = stream.getvalue()
        assert "telemetry summary" in out
        assert "decisions" in out

    def test_silent_when_empty(self):
        stream = io.StringIO()
        TableSink(stream=stream).close()
        assert stream.getvalue() == ""


class TestSummarizeRecords:
    def _capture(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        return registry, sink

    def test_counter_last_value_wins(self):
        registry, sink = self._capture()
        counter = registry.counter("hits")
        for _ in range(5):
            counter.inc()
        summary = summarize_records(sink.records)
        assert summary.counters["hits"] == 5.0

    def test_counter_total_sums_label_sets(self):
        registry, sink = self._capture()
        registry.counter("steps", strategy="a").inc(3)
        registry.counter("steps", strategy="b").inc(4)
        registry.counter("stepsize").inc(100)  # prefix, not the same counter
        summary = summarize_records(sink.records)
        assert summary.counter_total("steps") == 7.0

    def test_gauge_and_histogram_and_span(self):
        registry, sink = self._capture()
        registry.gauge("nodes").set(3)
        registry.gauge("nodes").set(5)
        registry.histogram("lat").observe(1.0)
        registry.histogram("lat").observe(3.0)
        with registry.span("plan"):
            pass
        summary = summarize_records(sink.records)
        assert summary.gauges["nodes"] == 5.0
        assert summary.histograms["lat"].count == 2
        assert summary.histograms["lat"].mean == 2.0
        assert summary.spans["plan"].count == 1
        assert summary.records == len(sink.records)

    def test_format_summary_sections(self):
        registry, sink = self._capture()
        registry.counter("c").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        with registry.span("s"):
            pass
        text = format_summary(summarize_records(sink.records))
        assert "phase timings (spans)" in text
        assert "counters" in text
        assert "gauges (last value)" in text
        assert "histograms" in text

    def test_round_trips_json_encoding(self):
        registry, sink = self._capture()
        registry.counter("c", k="v").inc()
        encoded = [json.loads(json.dumps(r)) for r in sink.records]
        summary = summarize_records(encoded)
        assert summary.counters["c{k=v}"] == 1.0

    def test_training_section_groups_by_model_and_path(self):
        registry, sink = self._capture()
        for path, seconds in (("fastgrad", 0.010), ("tape", 0.030)):
            registry.counter(
                "forecast.fastgrad_batches", model="DeepARForecaster", path=path
            ).inc(2)
            hist = registry.histogram(
                "forecast.batch_seconds", model="DeepARForecaster", path=path
            )
            hist.observe(seconds)
            hist.observe(seconds)
        text = format_summary(summarize_records(sink.records))
        assert "training (per grad path)" in text
        fast_line = next(l for l in text.splitlines() if "fastgrad" in l and "DeepAR" in l)
        tape_line = next(l for l in text.splitlines() if "tape" in l and "DeepAR" in l)
        assert "2" in fast_line and "10.00" in fast_line
        assert "30.00" in tape_line

    def test_training_section_absent_without_fit_metrics(self):
        registry, sink = self._capture()
        registry.counter("c").inc()
        text = format_summary(summarize_records(sink.records))
        assert "training (per grad path)" not in text


def health_stream():
    """A minimal but complete model-health event stream."""
    return [
        {"kind": "counter", "name": "noise", "labels": {}, "value": 1.0},
        {
            "kind": "model_health",
            "name": "monitor.window",
            "window": 0,
            "start_index": 0,
            "end_index": 11,
            "steps": 12,
            "coverage": {"0.5": 0.5, "0.9": 0.92},
            "calibration_error": 0.02,
            "wql": {"0.5": 0.1, "0.9": 0.04},
            "mean_wql": 0.07,
            "mape": 0.12,
            "drift_score": 0.4,
            "drift_events": 0,
            "violation_rate": 0.0,
        },
        {
            "kind": "model_health",
            "name": "monitor.drift",
            "time_index": 17,
            "detector": "page_hinkley",
            "score": 14.2,
            "direction": "up",
        },
        {
            "kind": "alert",
            "name": "coverage@0.9 < 0.75 for 2",
            "severity": "warning",
            "message": "coverage@0.9 < 0.75 for 2: value 0.3 < 0.75",
            "window": 1,
            "end_index": 23,
            "value": 0.3,
        },
        {
            "kind": "provenance",
            "name": "runtime.decision",
            "time_index": 12,
            "source": "predictive",
            "tau_min": 0.9,
            "tau_max": 0.9,
            "uncertainty_mean": 3.1,
            "bound_max": 120.0,
            "ramp_clipped_steps": 2,
            "nodes_first": 4,
        },
    ]


class TestModelHealthSummary:
    def test_dispatch_by_kind_and_name(self):
        health = summarize_model_health(health_stream())
        assert len(health.windows) == 1
        assert len(health.drifts) == 1
        assert len(health.alerts) == 1
        assert len(health.provenance) == 1

    def test_falsy_when_stream_has_no_health_records(self):
        assert not summarize_model_health(
            [{"kind": "counter", "name": "c", "labels": {}}]
        )
        assert summarize_model_health(health_stream())

    def test_format_renders_all_sections(self):
        text = format_model_health(summarize_model_health(health_stream()))
        assert "model health" in text
        assert "calibration over time" in text
        assert "cov@0.9" in text
        assert "0.920" in text
        assert "drift events" in text
        assert "page_hinkley" in text
        assert "alerts" in text
        assert "coverage@0.9 < 0.75 for 2" in text
        assert "decisions" in text
        assert "predictive" in text

    def test_format_caps_provenance_rows(self):
        health = summarize_model_health(health_stream())
        base = health.provenance[0]
        health.provenance = [dict(base, time_index=t) for t in range(40)]
        text = format_model_health(health, max_provenance=5)
        assert "t=39" in text or "39" in text
        shown = [l for l in text.splitlines() if "predictive" in l]
        assert len(shown) == 5

    def test_survives_json_round_trip(self):
        encoded = [json.loads(json.dumps(r)) for r in health_stream()]
        text = format_model_health(summarize_model_health(encoded))
        assert "calibration over time" in text
