"""Tests for the metric primitives, spans, and the ambient registry."""

import numpy as np
import pytest

from repro.obs import (
    InMemorySink,
    MetricsRegistry,
    get_registry,
    set_registry,
    using_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("decisions")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(3.0)
        assert counter.value == 4.0

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1.0)

    def test_interned_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("events", strategy="tft")
        b = registry.counter("events", strategy="tft")
        c = registry.counter("events", strategy="naive")
        assert a is b
        assert a is not c

    def test_flat_key_sorts_labels(self):
        counter = MetricsRegistry().counter("c", b="2", a="1")
        assert counter.key == "c{a=1,b=2}"

    def test_events_carry_running_total(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(2.0)
        values = [r["value"] for r in sink.records]
        deltas = [r["delta"] for r in sink.records]
        assert values == [1.0, 3.0]
        assert deltas == [1.0, 2.0]


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("nodes")
        assert gauge.value is None
        gauge.set(5)
        gauge.add(2)
        assert gauge.value == 7.0

    def test_add_from_unset_starts_at_zero(self):
        gauge = MetricsRegistry().gauge("nodes")
        gauge.add(3)
        assert gauge.value == 3.0


class TestHistogram:
    def test_exact_moments(self):
        hist = MetricsRegistry().histogram("latency")
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == 10.0
        assert hist.mean == 2.5
        assert hist.min == 1.0
        assert hist.max == 4.0

    def test_quantiles_exact_below_reservoir_size(self):
        hist = MetricsRegistry().histogram("latency")
        values = np.arange(101, dtype=np.float64)
        for v in values:
            hist.observe(v)
        assert hist.quantile(0.5) == pytest.approx(50.0)
        assert hist.quantile(0.9) == pytest.approx(90.0)

    def test_reservoir_quantiles_approximate_beyond_capacity(self):
        hist = MetricsRegistry().histogram("latency", reservoir_size=256)
        rng = np.random.default_rng(0)
        for v in rng.uniform(0, 100, size=10_000):
            hist.observe(v)
        assert hist.count == 10_000
        # Uniform[0, 100]: the sampled median should land near 50.
        assert hist.quantile(0.5) == pytest.approx(50.0, abs=10.0)

    def test_quantile_without_observations_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("empty").quantile(0.5)

    def test_summary_fields(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0)
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["p50"] == 1.0

    def test_empty_summary(self):
        assert MetricsRegistry().histogram("h").summary() == {"count": 0, "sum": 0.0}


class TestSpans:
    def test_span_records_duration_histogram(self):
        registry = MetricsRegistry()
        with registry.span("plan"):
            pass
        snap = registry.snapshot()
        assert snap["spans"]["plan"]["count"] == 1
        assert snap["spans"]["plan"]["max"] >= 0.0

    def test_nested_spans_build_slash_paths(self):
        registry = MetricsRegistry()
        with registry.span("evaluate"):
            with registry.span("plan"):
                with registry.span("forecast"):
                    pass
        spans = registry.snapshot()["spans"]
        assert set(spans) == {"evaluate", "evaluate/plan", "evaluate/plan/forecast"}

    def test_span_stack_unwinds_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                raise RuntimeError("boom")
        with registry.span("after"):
            pass
        assert "after" in registry.snapshot()["spans"]  # not "outer/after"

    def test_span_events_emitted_with_depth(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        with registry.span("a"):
            with registry.span("b", model="tft"):
                pass
        events = [r for r in sink.records if r["kind"] == "span"]
        # Inner span completes (and is emitted) first.
        assert [e["name"] for e in events] == ["a/b", "a"]
        assert events[0]["depth"] == 1
        assert events[0]["labels"] == {"model": "tft"}
        assert all(e["duration_s"] >= 0.0 for e in events)


class TestRegistry:
    def test_snapshot_groups_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(3.0)
        snap = registry.snapshot()
        assert snap["counters"]["c"] == 1.0
        assert snap["gauges"]["g"] == 2.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_events_timestamped_with_injected_clock(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink], time_source=lambda: 123.0)
        registry.counter("c").inc()
        assert sink.records[0]["ts"] == 123.0

    def test_sink_add_remove(self):
        registry = MetricsRegistry()
        sink = InMemorySink()
        registry.add_sink(sink)
        registry.counter("c").inc()
        registry.remove_sink(sink)
        registry.counter("c").inc()
        assert len(sink) == 1


class TestEmitEvent:
    def test_noop_without_sinks(self):
        registry = MetricsRegistry()
        registry.emit_event("provenance", "runtime.decision", nodes=[1, 2])
        # Nothing to observe, but must not raise or intern anything.
        assert registry.snapshot()["counters"] == {}

    def test_record_shape_with_sink(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink], time_source=lambda: 9.0)
        registry.emit_event("provenance", "runtime.decision", source="predictive")
        assert sink.records == [
            {
                "kind": "provenance",
                "name": "runtime.decision",
                "labels": {},
                "source": "predictive",
                "ts": 9.0,
            }
        ]

    def test_active_tracks_sinks(self):
        registry = MetricsRegistry()
        assert not registry.active
        sink = InMemorySink()
        registry.add_sink(sink)
        assert registry.active
        registry.remove_sink(sink)
        assert not registry.active


class TestReservoirDeterminism:
    """The histogram reservoir must not depend on PYTHONHASHSEED.

    Regression test: seeding from ``abs(hash(key))`` made the sampled
    quantiles vary from process to process.  The crc32-based seed must
    give identical reservoirs in every interpreter.
    """

    SCRIPT = (
        "import sys; sys.path.insert(0, 'src')\n"
        "from repro.obs import MetricsRegistry\n"
        "h = MetricsRegistry().histogram('lat', reservoir_size=8, shard='a')\n"
        "for i in range(500):\n"
        "    h.observe(float(i))\n"
        "print([h.quantile(q) for q in (0.1, 0.5, 0.9)])\n"
    )

    def _run(self, hash_seed):
        import os
        import subprocess
        import sys

        env = dict(os.environ, PYTHONHASHSEED=str(hash_seed))
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert result.returncode == 0, result.stderr
        return result.stdout

    def test_quantiles_identical_across_hash_seeds(self):
        outputs = {self._run(seed) for seed in (0, 1, 4242)}
        assert len(outputs) == 1


class TestAmbientRegistry:
    def test_default_is_a_registry(self):
        assert isinstance(get_registry(), MetricsRegistry)

    def test_using_registry_scopes_and_restores(self):
        outer = get_registry()
        scoped = MetricsRegistry()
        with using_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        original = get_registry()
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert previous is original
            assert get_registry() is replacement
        finally:
            set_registry(original)

    def test_using_registry_restores_on_exception(self):
        outer = get_registry()
        with pytest.raises(RuntimeError):
            with using_registry(MetricsRegistry()):
                raise RuntimeError("boom")
        assert get_registry() is outer
