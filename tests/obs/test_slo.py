"""SLO spec parsing, error-budget accounting, and burn-rate alerting."""

import pytest

from repro.obs import (
    AlertEngine,
    BurnRateRule,
    InMemorySink,
    MetricsRegistry,
    ModelHealthMonitor,
    SLO,
    SLOTracker,
    default_burn_rates,
    parse_slo,
    using_registry,
)


def window_record(end_index, violation_rate=0.0, steps=12, **extra):
    return {
        "window": end_index // steps,
        "end_index": end_index,
        "steps": steps,
        "violation_rate": violation_rate,
        **extra,
    }


class TestParseSlo:
    def test_rate_objective(self):
        slo = parse_slo("qos_violation_rate < 0.05 over 288")
        assert slo.kind == "rate"
        assert slo.metric == "violation_rate"  # friendly alias resolved
        assert slo.op == "<"
        assert slo.threshold == 0.05
        assert slo.window == 288
        assert slo.budget_rate == 0.05

    def test_good_rate_objective_inverts_budget(self):
        slo = parse_slo("coverage@0.9 >= 0.85 over 144")
        assert slo.kind == "rate"
        assert slo.level == 0.9
        assert slo.budget_rate == pytest.approx(0.15)
        assert slo.bad_rate(0.9) == pytest.approx(0.1)

    def test_latency_objective_from_quantile_suffix(self):
        slo = parse_slo("plan_latency_p99 < 0.5s")
        assert slo.kind == "latency"
        assert slo.metric == "runtime.step/plan"
        assert slo.quantile == 0.99
        assert slo.threshold == 0.5

    def test_latency_millisecond_unit(self):
        slo = parse_slo("step_latency_p90 < 250ms")
        assert slo.metric == "runtime.step"
        assert slo.quantile == 0.9
        assert slo.threshold == pytest.approx(0.25)

    def test_literal_span_path(self):
        slo = parse_slo("forecast/fit_p50 < 2s")
        assert slo.metric == "forecast/fit"
        assert slo.quantile == 0.5

    def test_default_window(self):
        assert parse_slo("qos_violation_rate < 0.1").window == 288

    @pytest.mark.parametrize(
        "bad", ["banana", "rate ~ 0.5", "x < ", "qos_violation_rate < 5 over 0"]
    )
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo(bad)

    def test_rate_threshold_must_be_a_fraction(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            parse_slo("qos_violation_rate < 5 over 288")

    def test_spec_round_trip_display(self):
        spec = "qos_violation_rate < 0.05 over 288"
        assert parse_slo(spec).spec == spec


class TestBurnRates:
    def test_default_ladder_scales_to_window(self):
        rules = default_burn_rates(288)
        by_severity = {r.severity: r for r in rules}
        assert by_severity["critical"].factor == 14.4
        assert by_severity["critical"].long_ticks == 12
        assert by_severity["warning"].long_ticks == 48

    def test_tiny_window_clamps_to_one_tick(self):
        for rule in default_burn_rates(4):
            assert rule.long_ticks >= 1
            assert rule.short_ticks >= 1

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError):
            BurnRateRule(severity="x", factor=0.0, long_ticks=1, short_ticks=1)
        with pytest.raises(ValueError):
            BurnRateRule(severity="x", factor=1.0, long_ticks=0, short_ticks=1)


class TestSLOTracker:
    def make_tracker(self, spec="qos_violation_rate < 0.05 over 48"):
        engine = AlertEngine()
        return SLOTracker([spec], engine=engine), engine

    def test_healthy_run_consumes_no_budget(self):
        tracker, engine = self.make_tracker()
        for i in range(6):
            status = tracker.observe_window(window_record((i + 1) * 12))
        (entry,) = status
        assert entry["healthy"]
        assert entry["budget_consumed"] == 0.0
        assert entry["budget_remaining"] == 1.0
        assert engine.alerts == []

    def test_sustained_burn_fires_and_resolves(self):
        tracker, engine = self.make_tracker()
        # Burn hard: 50% violation rate against a 5% budget = 10x burn,
        # above the warning factor (6x) once both sub-windows see it.
        status = None
        for i in range(4):
            status = tracker.observe_window(
                window_record((i + 1) * 12, violation_rate=0.5)
            )
        (entry,) = status
        assert not entry["healthy"]
        assert entry["burn"]["warning"]["firing"]
        assert any(a.rule.name.startswith("slo-burn:") for a in engine.alerts)
        fired = len(engine.alerts)

        # Still burning: once-per-episode, no new alert.
        tracker.observe_window(window_record(60, violation_rate=0.5))
        assert len(engine.alerts) == fired

        # Recover for long enough that the sub-windows drain.
        status = None
        for i in range(6):
            status = tracker.observe_window(window_record(72 + i * 12))
        (entry,) = status
        assert entry["healthy"]
        assert not entry["burn"]["warning"]["firing"]

    def test_single_bad_window_does_not_page(self):
        # Multi-window confirmation: one bad window inside an otherwise
        # clean stream must not fire the slow (warning) burn alert.
        tracker, engine = self.make_tracker()
        tracker.observe_window(window_record(12))
        tracker.observe_window(window_record(24, violation_rate=0.3))
        status = tracker.observe_window(window_record(36))
        (entry,) = status
        assert not entry["burn"]["warning"]["firing"]

    def test_budget_consumed_accounting(self):
        tracker, _ = self.make_tracker()
        # Budget = 0.05 * 48 = 2.4 bad ticks; 0.1 * 12 = 1.2 bad ticks.
        status = tracker.observe_window(window_record(12, violation_rate=0.1))
        (entry,) = status
        assert entry["bad_ticks"] == pytest.approx(1.2)
        assert entry["budget_consumed"] == pytest.approx(0.5)
        assert entry["budget_remaining"] == pytest.approx(0.5)

    def test_ledger_evicts_outside_window(self):
        tracker, _ = self.make_tracker()
        tracker.observe_window(window_record(12, violation_rate=1.0))
        # 5 windows later the bad window has left the 48-tick SLO window.
        for i in range(5):
            status = tracker.observe_window(window_record(24 + i * 12))
        (entry,) = status
        assert entry["bad_ticks"] == 0.0

    def test_good_rate_objective(self):
        engine = AlertEngine()
        tracker = SLOTracker(["coverage@0.9 >= 0.85 over 48"], engine=engine)
        status = tracker.observe_window(
            window_record(12, coverage={"0.9": 0.75})
        )
        (entry,) = status
        # bad rate = 1 - 0.75 = 0.25 over a 0.15 budget
        assert entry["bad_ticks"] == pytest.approx(0.25 * 12)

    def test_latency_objective_reads_span_histogram(self):
        registry = MetricsRegistry(sinks=[InMemorySink()])
        engine = AlertEngine()
        tracker = SLOTracker(["plan_latency_p99 < 0.5s"], engine=engine)
        with using_registry(registry):
            registry.histogram("span/runtime.step/plan").observe(0.001)
            status = tracker.observe_window(window_record(12))
        (entry,) = status
        assert entry["slo_kind"] == "latency"
        assert entry["value_s"] == pytest.approx(0.001)
        assert entry["healthy"]

    def test_latency_breach_fires_and_recovers(self):
        registry = MetricsRegistry(sinks=[InMemorySink()])
        engine = AlertEngine()
        tracker = SLOTracker(["plan_latency_p99 < 0.5s"], engine=engine)
        with using_registry(registry):
            hist = registry.histogram("span/runtime.step/plan")
            hist.observe(2.0)
            status = tracker.observe_window(window_record(12))
            assert not status[0]["healthy"]
            assert len(engine.alerts) == 1
            # Fast observations drown out the slow one; p99 recovers.
            for _ in range(500):
                hist.observe(0.001)
            status = tracker.observe_window(window_record(24))
            assert status[0]["healthy"]

    def test_latency_without_data_is_healthy(self):
        tracker, engine = self.make_tracker("plan_latency_p99 < 0.5s")
        with using_registry(MetricsRegistry()):
            (entry,) = tracker.observe_window(window_record(12))
        assert entry["value_s"] is None
        assert entry["healthy"]

    def test_emits_slo_events_and_budget_gauge(self):
        sink = InMemorySink()
        registry = MetricsRegistry(sinks=[sink])
        tracker, _ = self.make_tracker()
        with using_registry(registry):
            tracker.observe_window(window_record(12, violation_rate=0.1))
        kinds = {r["kind"] for r in sink.records}
        assert "slo" in kinds
        snap = registry.snapshot()
        key = [k for k in snap["gauges"] if k.startswith("slo.budget_consumed")]
        assert key and snap["gauges"][key[0]] == pytest.approx(0.5)

    def test_accepts_slo_instances(self):
        slo = SLO(
            metric="violation_rate", op="<", threshold=0.1, window=24,
            kind="rate",
        )
        tracker = SLOTracker([slo])
        assert tracker.slos[0].spec == "violation_rate < 0.1 over 24"


class TestStatePersistence:
    def test_state_round_trip(self):
        tracker, _ = SLOTracker(
            ["qos_violation_rate < 0.05 over 48"], engine=AlertEngine()
        ), None
        for i in range(3):
            tracker.observe_window(window_record((i + 1) * 12, violation_rate=0.2))
        state = tracker.state_dict()

        restored = SLOTracker(
            ["qos_violation_rate < 0.05 over 48"], engine=AlertEngine()
        )
        restored.load_state_dict(state)
        assert restored.windows_observed == tracker.windows_observed
        assert restored.status() == tracker.status()
        # Continuing from restored state matches continuing the original.
        a = tracker.observe_window(window_record(48, violation_rate=0.2))
        b = restored.observe_window(window_record(48, violation_rate=0.2))
        assert a[0]["bad_ticks"] == b[0]["bad_ticks"]
        assert a[0]["budget_consumed"] == b[0]["budget_consumed"]

    def test_mismatched_objectives_rejected(self):
        tracker = SLOTracker(["qos_violation_rate < 0.05 over 48"])
        tracker.observe_window(window_record(12))
        state = tracker.state_dict()
        other = SLOTracker(["qos_violation_rate < 0.1 over 24"])
        with pytest.raises(ValueError, match="do not match"):
            other.load_state_dict(state)


class TestMonitorIntegration:
    def test_monitor_feeds_tracker_on_window_close(self):
        engine = AlertEngine()
        tracker = SLOTracker(
            ["qos_violation_rate < 0.05 over 48"], engine=engine
        )
        monitor = ModelHealthMonitor(window=4, alerts=engine, slos=tracker)
        levels = (0.1, 0.5, 0.9)
        for t in range(8):
            monitor.observe(
                levels, (90.0, 100.0, 110.0), 100.0, time_index=t,
                nodes=1, threshold=50.0,  # violated every tick
            )
        assert tracker.windows_observed == 2
        (entry,) = tracker.status()
        assert entry["bad_ticks"] > 0

    def test_monitor_state_round_trips_slo_ledger(self):
        def build():
            engine = AlertEngine()
            tracker = SLOTracker(
                ["qos_violation_rate < 0.05 over 48"], engine=engine
            )
            return ModelHealthMonitor(window=4, alerts=engine, slos=tracker)

        monitor = build()
        levels = (0.1, 0.5, 0.9)
        for t in range(8):
            monitor.observe(levels, (90.0, 100.0, 110.0), 95.0, time_index=t)
        state = monitor.state_dict()
        assert state["slos"] is not None

        restored = build()
        restored.load_state_dict(state)
        assert restored.slos.windows_observed == monitor.slos.windows_observed
        assert restored.slos.status() == monitor.slos.status()

    def test_monitor_without_tracker_state_is_none(self):
        monitor = ModelHealthMonitor(window=4)
        assert monitor.state_dict()["slos"] is None
        # And loading an old-format state (no "slos" key) must not crash.
        state = monitor.state_dict()
        del state["slos"]
        ModelHealthMonitor(window=4).load_state_dict(state)
