"""Cross-process registry state: state_dict / merge_state_dict.

Workers in :mod:`repro.parallel` record telemetry into a fresh registry
and ship its ``state_dict()`` back; the parent merges it.  These tests
pin the merge semantics: counters add, gauges take the last value,
histogram moments merge exactly, reservoirs merge deterministically,
and span histograms re-root under the parent's open spans.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.obs import MetricsRegistry
from repro.parallel import parallel_map


def _worker_state(values=(1.0, 2.0, 3.0)):
    worker = MetricsRegistry()
    worker.counter("windows", model="deepar").inc(4)
    worker.gauge("loss").set(0.25)
    for v in values:
        worker.histogram("latency").observe(v)
    with worker.span("predict"):
        pass
    return worker.state_dict()


def test_state_dict_is_picklable_and_plain():
    state = _worker_state()
    assert pickle.loads(pickle.dumps(state)) == state
    assert set(state) == {"counters", "gauges", "histograms"}


def test_counters_add_and_gauges_set():
    parent = MetricsRegistry()
    parent.counter("windows", model="deepar").inc(1)
    parent.merge_state_dict(_worker_state())
    parent.merge_state_dict(_worker_state())
    assert parent.counter("windows", model="deepar").value == 9.0
    assert parent.gauge("loss").value == 0.25


def test_histogram_moments_merge_exactly():
    parent = MetricsRegistry()
    parent.histogram("latency").observe(10.0)
    parent.merge_state_dict(_worker_state(values=(1.0, 2.0, 3.0)))
    hist = parent.histogram("latency")
    assert hist.count == 4
    assert hist.sum == 16.0
    assert hist.min == 1.0
    assert hist.max == 10.0


def test_reservoir_merge_is_deterministic():
    def merged():
        parent = MetricsRegistry()
        hist = parent.histogram("latency", reservoir_size=8)
        for v in range(20):
            hist.observe(float(v))
        parent.merge_state_dict(_worker_state(values=tuple(float(v) for v in range(50))))
        return parent.histogram("latency", reservoir_size=8).quantile([0.1, 0.5, 0.9])

    assert np.array_equal(merged(), merged())


def test_span_histograms_reroot_under_open_spans():
    parent = MetricsRegistry()
    with parent.span("backtest"):
        parent.merge_state_dict(_worker_state(), span_prefix=parent.current_span_path)
    spans = parent.snapshot()["spans"]
    assert "backtest/predict" in spans
    assert "predict" not in spans


def test_merge_without_prefix_keeps_names():
    parent = MetricsRegistry()
    parent.merge_state_dict(_worker_state())
    assert "predict" in parent.snapshot()["spans"]


def test_zero_value_counters_not_interned():
    worker = MetricsRegistry()
    worker.counter("never_incremented")
    parent = MetricsRegistry()
    parent.merge_state_dict(worker.state_dict())
    assert parent.snapshot()["counters"] == {}


def _observe(context, item):
    from repro.obs import get_registry

    get_registry().counter("items").inc()
    get_registry().histogram("value").observe(float(item))
    return item


def test_parallel_map_merges_worker_telemetry():
    parent = MetricsRegistry()
    results = parallel_map(_observe, [1, 2, 3, 4], n_jobs=2, merge_into=parent)
    assert results == [1, 2, 3, 4]
    assert parent.counter("items").value == 4.0
    hist = parent.histogram("value")
    assert hist.count == 4
    assert hist.sum == 10.0
