"""Tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.traces import (
    STEPS_PER_DAY,
    BurstComponent,
    NoiseComponent,
    RegimeSwitchComponent,
    SeasonalComponent,
    SpikeComponent,
    SyntheticWorkload,
    TrendComponent,
    alibaba_like_trace,
    google_like_trace,
)


def autocorrelation(series: np.ndarray, lag: int) -> float:
    centered = series - series.mean()
    return float(
        (centered[:-lag] * centered[lag:]).sum()
        / np.sqrt((centered[:-lag] ** 2).sum() * (centered[lag:] ** 2).sum())
    )


class TestComponents:
    def test_seasonal_periodicity(self):
        comp = SeasonalComponent(period=10, harmonics={1: 2.0})
        t = np.arange(30)
        out = comp.generate(t, np.random.default_rng(0))
        np.testing.assert_allclose(out[:10], out[10:20], atol=1e-12)

    def test_seasonal_amplitude(self):
        comp = SeasonalComponent(period=100, harmonics={1: 3.0})
        out = comp.generate(np.arange(100), np.random.default_rng(0))
        assert out.max() == pytest.approx(3.0, abs=0.01)

    def test_trend_slope(self):
        comp = TrendComponent(slope_per_step=0.5)
        out = comp.generate(np.arange(10), np.random.default_rng(0))
        np.testing.assert_allclose(np.diff(out), 0.5)

    def test_trend_walk_is_integrated(self):
        comp = TrendComponent(walk_std=1.0)
        out = comp.generate(np.arange(5000), np.random.default_rng(1))
        # A random walk's spread grows; late values drift from early ones.
        assert np.abs(out[-500:]).mean() > np.abs(out[:10]).mean()

    def test_noise_zero_mean(self):
        comp = NoiseComponent(std=2.0)
        out = comp.generate(np.arange(50000), np.random.default_rng(2))
        assert abs(out.mean()) < 0.05
        assert out.std() == pytest.approx(2.0, abs=0.05)

    def test_heteroscedastic_noise_varies(self):
        comp = NoiseComponent(std=2.0, volatility_period=1000, volatility_strength=0.9)
        out = comp.generate(np.arange(10000), np.random.default_rng(3))
        # Std in the calm phase differs from the loud phase.
        loud = out[200:300].std()
        calm = out[700:800].std()
        assert loud > calm

    def test_bursts_decay(self):
        comp = BurstComponent(rate_per_step=1.0, magnitude=10.0, decay=0.5)
        out = comp.generate(np.arange(100), np.random.default_rng(4))
        assert np.all(out >= 0)

    def test_bursts_sparse_at_low_rate(self):
        comp = BurstComponent(rate_per_step=0.001, magnitude=10.0)
        out = comp.generate(np.arange(1000), np.random.default_rng(5))
        assert (out > 0.01).mean() < 0.2

    def test_spikes_are_isolated(self):
        comp = SpikeComponent(rate_per_step=0.01, magnitude=100.0)
        out = comp.generate(np.arange(10000), np.random.default_rng(6))
        assert 0.0 < (out > 0).mean() < 0.05

    def test_regime_switch_two_levels(self):
        comp = RegimeSwitchComponent(switch_probability=0.05, level_high=7.0)
        out = comp.generate(np.arange(5000), np.random.default_rng(7))
        assert set(np.unique(out)) == {0.0, 7.0}
        # Both regimes visited
        assert 0.1 < (out == 7.0).mean() < 0.9


class TestSyntheticWorkload:
    def test_reproducible(self):
        model = SyntheticWorkload(
            base_level=10.0, components=[NoiseComponent(std=1.0)]
        )
        a = model.generate(100, seed=42)
        b = model.generate(100, seed=42)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        model = SyntheticWorkload(base_level=10.0, components=[NoiseComponent(std=1.0)])
        assert not np.allclose(model.generate(100, seed=1), model.generate(100, seed=2))

    def test_floor_enforced(self):
        model = SyntheticWorkload(
            base_level=0.0, components=[NoiseComponent(std=5.0)], floor=0.0
        )
        assert model.generate(1000, seed=0).min() >= 0.0

    def test_rejects_zero_steps(self):
        with pytest.raises(ValueError):
            SyntheticWorkload(base_level=1.0).generate(0)


class TestPresets:
    def test_alibaba_trace_shape(self):
        trace = alibaba_like_trace(num_steps=1000, seed=0)
        assert len(trace) == 1000
        assert trace.metric == "cpu"
        assert trace.interval_seconds == 600

    def test_alibaba_diurnal_cycle(self):
        trace = alibaba_like_trace(num_steps=STEPS_PER_DAY * 14, seed=1)
        # Autocorrelation at one day's lag should be strongly positive.
        assert autocorrelation(trace.values, STEPS_PER_DAY) > 0.3

    def test_alibaba_metrics(self):
        for metric in ("cpu", "memory", "disk"):
            trace = alibaba_like_trace(num_steps=500, seed=0, metric=metric)
            assert trace.metric == metric
            assert np.all(trace.values >= 0)

    def test_alibaba_rejects_unknown_metric(self):
        import pytest

        with pytest.raises(ValueError):
            alibaba_like_trace(num_steps=100, metric="gpu")

    def test_google_noisier_than_alibaba(self):
        """Table I's premise: the Google trace is harder to forecast.

        Compare the relative one-step variability of both presets.
        """
        alibaba = alibaba_like_trace(num_steps=STEPS_PER_DAY * 14, seed=2)
        google = google_like_trace(num_steps=STEPS_PER_DAY * 14, seed=2)
        alibaba_rough = np.abs(np.diff(alibaba.values)).mean() / alibaba.values.mean()
        google_rough = np.abs(np.diff(google.values)).mean() / google.values.mean()
        assert google_rough > alibaba_rough

    def test_google_regime_switches_present(self):
        trace = google_like_trace(num_steps=STEPS_PER_DAY * 28, seed=3)
        # Long-window rolling mean should shift materially between windows.
        window = STEPS_PER_DAY
        means = [
            trace.values[i : i + window].mean()
            for i in range(0, len(trace.values) - window, window)
        ]
        assert max(means) - min(means) > 0.1 * trace.values.mean()

    def test_aggregate_scale_spans_many_nodes(self):
        """Plans must span tens of nodes for quantile choices to matter."""
        trace = alibaba_like_trace(num_steps=1000, seed=0)
        assert trace.values.mean() / 60.0 > 10  # >10 nodes at theta=60
