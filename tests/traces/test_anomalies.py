"""Tests for anomaly injection."""

import numpy as np
import pytest

from repro.traces import (
    Trace,
    inject_flash_crowd,
    inject_level_shift,
    inject_noise_burst,
    inject_outage_dip,
)


@pytest.fixture()
def flat_trace():
    return Trace("flat", np.full(100, 1000.0))


class TestLevelShift:
    def test_step_applied_from_start(self, flat_trace):
        shifted = inject_level_shift(flat_trace, start=40, magnitude=500.0)
        np.testing.assert_array_equal(shifted.values[:40], 1000.0)
        np.testing.assert_array_equal(shifted.values[40:], 1500.0)

    def test_negative_shift_floored(self, flat_trace):
        shifted = inject_level_shift(flat_trace, start=0, magnitude=-2000.0)
        np.testing.assert_array_equal(shifted.values, 0.0)

    def test_original_untouched(self, flat_trace):
        inject_level_shift(flat_trace, start=10, magnitude=100.0)
        np.testing.assert_array_equal(flat_trace.values, 1000.0)

    def test_out_of_range_start(self, flat_trace):
        with pytest.raises(ValueError):
            inject_level_shift(flat_trace, start=100, magnitude=1.0)


class TestFlashCrowd:
    def test_shape(self, flat_trace):
        surged = inject_flash_crowd(
            flat_trace, start=10, peak_magnitude=600.0,
            ramp_steps=5, hold_steps=10, decay_steps=10,
        )
        assert surged.values[:10].max() == 1000.0
        # plateau reaches the peak
        np.testing.assert_allclose(surged.values[15:25], 1600.0)
        # decays back toward baseline
        assert surged.values[34] < 1100.0
        # and ends clean
        np.testing.assert_array_equal(surged.values[40:], 1000.0)

    def test_rejects_overflowing_window(self, flat_trace):
        with pytest.raises(ValueError):
            inject_flash_crowd(flat_trace, start=90, peak_magnitude=100.0)

    def test_rejects_nonpositive_peak(self, flat_trace):
        with pytest.raises(ValueError):
            inject_flash_crowd(flat_trace, start=0, peak_magnitude=0.0)


class TestOutage:
    def test_dip_and_recovery(self, flat_trace):
        out = inject_outage_dip(
            flat_trace, start=20, duration=10,
            residual_fraction=0.1, retry_surge_fraction=0.0,
        )
        np.testing.assert_allclose(out.values[20:30], 100.0)
        np.testing.assert_array_equal(out.values[30:], 1000.0)

    def test_retry_surge_conserves_fraction(self, flat_trace):
        out = inject_outage_dip(
            flat_trace, start=20, duration=10,
            residual_fraction=0.0, retry_surge_fraction=0.5, surge_steps=5,
        )
        dropped = 1000.0 * 10
        surge = out.values[30:35] - 1000.0
        assert surge.sum() == pytest.approx(dropped * 0.5)

    def test_rejects_bad_fractions(self, flat_trace):
        with pytest.raises(ValueError):
            inject_outage_dip(flat_trace, 0, 5, residual_fraction=1.5)
        with pytest.raises(ValueError):
            inject_outage_dip(flat_trace, 0, 5, retry_surge_fraction=-0.1)


class TestNoiseBurst:
    def test_variance_raised_mean_kept(self, flat_trace):
        big = Trace("flat", np.full(5000, 1000.0))
        noisy = inject_noise_burst(big, start=1000, duration=3000, extra_std=50.0)
        window = noisy.values[1000:4000]
        assert window.std() == pytest.approx(50.0, rel=0.1)
        assert window.mean() == pytest.approx(1000.0, rel=0.01)
        np.testing.assert_array_equal(noisy.values[:1000], 1000.0)

    def test_reproducible(self, flat_trace):
        a = inject_noise_burst(flat_trace, 10, 20, 30.0, seed=5)
        b = inject_noise_burst(flat_trace, 10, 20, 30.0, seed=5)
        np.testing.assert_array_equal(a.values, b.values)

    def test_rejects_bad_std(self, flat_trace):
        with pytest.raises(ValueError):
            inject_noise_burst(flat_trace, 0, 10, extra_std=0.0)
