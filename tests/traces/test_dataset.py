"""Tests for Trace containers, aggregation, scalers, and CSV loaders."""

import numpy as np
import pytest

from repro.traces import (
    StandardScaler,
    Trace,
    aggregate,
    load_machine_usage_csv,
    load_task_usage_csv,
)


class TestTrace:
    def test_basic_properties(self):
        trace = Trace("t", np.arange(144.0))
        assert len(trace) == 144
        assert trace.duration_hours == pytest.approx(24.0)

    def test_split_chronological(self):
        trace = Trace("t", np.arange(100.0))
        train, test = trace.split(0.2)
        assert len(train) == 80
        assert len(test) == 20
        np.testing.assert_array_equal(test.values, np.arange(80.0, 100.0))

    def test_split_preserves_metadata(self):
        trace = Trace("t", np.arange(100.0), interval_seconds=300, metric="memory")
        train, _ = trace.split(0.5)
        assert train.interval_seconds == 300
        assert train.metric == "memory"

    def test_slice(self):
        trace = Trace("t", np.arange(10.0))
        np.testing.assert_array_equal(trace.slice(2, 5).values, [2.0, 3.0, 4.0])

    def test_summary_keys(self):
        summary = Trace("t", np.arange(100.0)).summary()
        assert set(summary) == {"mean", "std", "min", "max", "p50", "p95", "p99"}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Trace("t", np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Trace("t", np.ones((3, 3)))

    def test_split_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Trace("t", np.arange(10.0)).split(0.0)


class TestAggregate:
    def test_mean_binning(self):
        ts = np.array([0.0, 100.0, 700.0])
        vs = np.array([10.0, 30.0, 50.0])
        out = aggregate(ts, vs, interval_seconds=600)
        np.testing.assert_allclose(out, [20.0, 50.0])

    def test_max_reducer(self):
        ts = np.array([0.0, 100.0])
        vs = np.array([10.0, 30.0])
        np.testing.assert_allclose(aggregate(ts, vs, 600, reducer="max"), [30.0])

    def test_sum_reducer(self):
        ts = np.array([0.0, 100.0])
        vs = np.array([10.0, 30.0])
        np.testing.assert_allclose(aggregate(ts, vs, 600, reducer="sum"), [40.0])

    def test_gap_forward_filled(self):
        ts = np.array([0.0, 1800.0])  # bins 0 and 3; bins 1, 2 empty
        vs = np.array([10.0, 40.0])
        out = aggregate(ts, vs, interval_seconds=600)
        np.testing.assert_allclose(out, [10.0, 10.0, 10.0, 40.0])

    def test_unsorted_input(self):
        ts = np.array([700.0, 0.0, 100.0])
        vs = np.array([50.0, 10.0, 30.0])
        np.testing.assert_allclose(aggregate(ts, vs, 600), [20.0, 50.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            aggregate(np.array([0.0]), np.array([1.0, 2.0]))

    def test_rejects_unknown_reducer(self):
        with pytest.raises(ValueError):
            aggregate(np.array([0.0]), np.array([1.0]), reducer="median")


class TestStandardScaler:
    def test_roundtrip(self):
        scaler = StandardScaler()
        data = np.random.default_rng(0).normal(50.0, 10.0, size=200)
        normalised = scaler.fit_transform(data)
        assert abs(normalised.mean()) < 1e-10
        np.testing.assert_allclose(scaler.inverse_transform(normalised), data)

    def test_constant_series_safe(self):
        scaler = StandardScaler()
        out = scaler.fit_transform(np.full(10, 7.0))
        assert np.all(np.isfinite(out))

    def test_use_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.ones(3))


class TestLoaders:
    def test_alibaba_loader(self, tmp_path):
        path = tmp_path / "machine_usage.csv"
        path.write_text(
            "m_1,0,40,60,,,,,10\n"
            "m_2,0,60,60,,,,,10\n"
            "m_1,600,80,60,,,,,10\n"
        )
        trace = load_machine_usage_csv(path)
        np.testing.assert_allclose(trace.values, [50.0, 80.0])

    def test_alibaba_loader_machine_filter(self, tmp_path):
        path = tmp_path / "machine_usage.csv"
        path.write_text("m_1,0,40,60\nm_2,0,60,60\n")
        trace = load_machine_usage_csv(path, machine_ids={"m_1"})
        np.testing.assert_allclose(trace.values, [40.0])

    def test_alibaba_loader_empty_raises(self, tmp_path):
        path = tmp_path / "machine_usage.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_machine_usage_csv(path)

    def test_google_loader_sums_tasks(self, tmp_path):
        path = tmp_path / "task_usage.csv"
        # start_us, end_us, job, task, machine, cpu
        path.write_text(
            "0,1,j1,0,m,0.25\n"
            "0,1,j1,1,m,0.50\n"
            "600000000,1,j1,0,m,0.30\n"
        )
        trace = load_task_usage_csv(path)
        np.testing.assert_allclose(trace.values, [0.75, 0.30])

    def test_google_loader_task_filter(self, tmp_path):
        path = tmp_path / "task_usage.csv"
        path.write_text("0,1,j1,0,m,0.25\n0,1,j1,1,m,0.50\n")
        trace = load_task_usage_csv(path, task_ids={"j1:0"})
        np.testing.assert_allclose(trace.values, [0.25])
