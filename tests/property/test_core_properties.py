"""Property-based tests on the core scaling invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    FixedQuantilePolicy,
    required_nodes,
    solve_closed_form,
    solve_lp,
    solve_with_ramp_limits,
    quantile_uncertainty,
)
from repro.forecast import QuantileForecast

workloads = arrays(
    dtype=np.float64,
    shape=st.integers(1, 40),
    elements=st.floats(0.0, 5000.0, allow_nan=False),
)

thresholds = st.floats(1.0, 200.0, allow_nan=False)


class TestRequiredNodesProperties:
    @given(workloads, thresholds)
    def test_constraint_always_satisfied(self, w, theta):
        c = required_nodes(w, theta)
        assert np.all(w / c <= theta * (1 + 1e-9))

    @given(workloads, thresholds)
    def test_minimality(self, w, theta):
        c = required_nodes(w, theta)
        mask = c > 1
        if mask.any():
            assert np.all(w[mask] / (c[mask] - 1) > theta * (1 - 1e-9))

    @given(workloads, thresholds)
    def test_monotone_in_workload(self, w, theta):
        c_low = required_nodes(w, theta)
        c_high = required_nodes(w * 1.5 + 1.0, theta)
        assert np.all(c_high >= c_low)

    @given(workloads, thresholds)
    def test_antitone_in_threshold(self, w, theta):
        assert np.all(required_nodes(w, theta) >= required_nodes(w, theta * 2))


class TestSolverProperties:
    @settings(max_examples=25)
    @given(workloads, thresholds)
    def test_lp_equals_closed_form(self, w, theta):
        np.testing.assert_array_equal(
            solve_lp(w, theta).nodes, solve_closed_form(w, theta).nodes
        )

    @settings(max_examples=25)
    @given(workloads, thresholds, st.integers(1, 10), st.integers(1, 10))
    def test_ramped_feasible_and_bounded(self, w, theta, out_lim, in_lim):
        plan = solve_with_ramp_limits(w, theta, out_lim, in_lim)
        assert np.all(w / plan.nodes <= theta * (1 + 1e-9))
        if len(plan.nodes) > 1:
            deltas = np.diff(plan.nodes)
            assert deltas.max() <= out_lim
            assert deltas.min() >= -in_lim

    @settings(max_examples=25)
    @given(workloads, thresholds, st.integers(1, 10), st.integers(1, 10))
    def test_ramped_dominates_unconstrained(self, w, theta, out_lim, in_lim):
        ramped = solve_with_ramp_limits(w, theta, out_lim, in_lim)
        free = solve_closed_form(w, theta)
        assert np.all(ramped.nodes >= free.nodes)


quantile_fans = st.builds(
    lambda base, spreads: QuantileForecast(
        levels=np.array([0.1, 0.5, 0.9]),
        values=np.sort(
            base[None, :] + np.cumsum(np.abs(spreads), axis=0) - np.abs(spreads[0]),
            axis=0,
        ),
    ),
    arrays(np.float64, st.just(6), elements=st.floats(10, 1000)),
    arrays(np.float64, st.just((3, 6)), elements=st.floats(0, 50)),
)


class TestForecastProperties:
    @given(quantile_fans)
    def test_uncertainty_non_negative(self, fc):
        assert np.all(quantile_uncertainty(fc) >= -1e-9)

    @given(quantile_fans)
    def test_at_within_grid_bounds(self, fc):
        mid = fc.at(0.7)
        assert np.all(mid >= fc.values[0] - 1e-9)
        assert np.all(mid <= fc.values[-1] + 1e-9)

    @given(quantile_fans, st.floats(0.11, 0.89))
    def test_interpolation_monotone_in_tau(self, fc, tau):
        assert np.all(fc.at(tau + 0.01) >= fc.at(tau) - 1e-9)

    @given(quantile_fans)
    def test_higher_policy_never_allocates_less(self, fc):
        low = solve_closed_form(
            np.maximum(FixedQuantilePolicy(0.5).bound_workload(fc), 0.0), 60.0
        )
        high = solve_closed_form(
            np.maximum(FixedQuantilePolicy(0.9).bound_workload(fc), 0.0), 60.0
        )
        assert np.all(high.nodes >= low.nodes)


class TestMetricProperties:
    @given(
        arrays(np.float64, st.just(20), elements=st.floats(1.0, 1000.0)),
        arrays(np.float64, st.just(20), elements=st.floats(1.0, 1000.0)),
        st.floats(0.05, 0.95),
    )
    def test_quantile_loss_non_negative(self, y, pred, tau):
        from repro.evaluation import quantile_loss

        assert quantile_loss(y, pred, tau) >= 0.0

    @given(
        arrays(np.float64, st.just(20), elements=st.floats(1.0, 1000.0)),
        st.floats(0.05, 0.95),
    )
    def test_quantile_loss_zero_iff_exact(self, y, tau):
        from repro.evaluation import quantile_loss

        assert quantile_loss(y, y, tau) == 0.0

    @given(
        arrays(np.float64, st.just(20), elements=st.floats(1.0, 1000.0)),
        arrays(np.float64, st.just(20), elements=st.floats(1.0, 1000.0)),
    )
    def test_coverage_in_unit_interval(self, y, pred):
        from repro.evaluation import coverage

        assert 0.0 <= coverage(y, pred) <= 1.0
