"""Property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor

finite_arrays = arrays(
    dtype=np.float64,
    shape=array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=6),
    elements=st.floats(-100, 100, allow_nan=False),
)

small_arrays = arrays(
    dtype=np.float64,
    shape=st.just((4,)),
    elements=st.floats(-10, 10, allow_nan=False),
)


class TestAlgebraicLaws:
    @given(finite_arrays)
    def test_add_commutes(self, a):
        x, y = Tensor(a), Tensor(a[::-1].copy())
        np.testing.assert_allclose((x + y).data, (y + x).data)

    @given(finite_arrays)
    def test_double_negation(self, a):
        np.testing.assert_allclose((-(-Tensor(a))).data, a)

    @given(small_arrays, small_arrays)
    def test_mul_grad_is_other_operand(self, a, b):
        x = Tensor(a, requires_grad=True)
        (x * b).sum().backward()
        np.testing.assert_allclose(x.grad, b, rtol=1e-12)

    @given(small_arrays)
    def test_sum_grad_is_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a))

    @given(small_arrays)
    def test_linearity_of_grad(self, a):
        """grad of (3x).sum() is 3 * grad of x.sum()."""
        x = Tensor(a, requires_grad=True)
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, 3.0 * np.ones_like(a))


class TestNonlinearityInvariants:
    @given(finite_arrays)
    def test_sigmoid_in_unit_interval(self, a):
        out = Tensor(a).sigmoid().data
        assert np.all(out >= 0.0)
        assert np.all(out <= 1.0)

    @given(finite_arrays)
    def test_softplus_exceeds_relu(self, a):
        x = Tensor(a)
        assert np.all(x.softplus().data >= x.relu().data - 1e-12)

    @given(finite_arrays)
    def test_softmax_is_probability_vector(self, a):
        out = Tensor(a).softmax(axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)
        assert np.all(out >= 0.0)

    @given(finite_arrays)
    def test_tanh_bounded(self, a):
        out = Tensor(a).tanh().data
        assert np.all(np.abs(out) <= 1.0)

    @given(small_arrays)
    def test_exp_log_roundtrip_grad_chain(self, a):
        x = Tensor(a, requires_grad=True)
        # log(exp(x)) == x, so grad must be exactly ones
        x.exp().log().sum().backward()
        np.testing.assert_allclose(x.grad, np.ones_like(a), rtol=1e-9)


class TestShapeInvariants:
    @given(finite_arrays)
    def test_reshape_roundtrip(self, a):
        x = Tensor(a)
        np.testing.assert_array_equal(x.reshape(-1).reshape(*a.shape).data, a)

    @given(finite_arrays)
    def test_concat_split_identity(self, a):
        x = Tensor(a)
        joined = Tensor.concat([x, x], axis=0)
        assert joined.shape[0] == 2 * a.shape[0]
        np.testing.assert_array_equal(joined.data[: a.shape[0]], a)
