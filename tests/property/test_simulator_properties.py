"""Property-based tests for the simulator and QoS model."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ScalingPlan, solve_closed_form
from repro.simulator import MMcQueue, SharedStorage, replay_plan

workloads = arrays(
    dtype=np.float64,
    shape=st.integers(2, 20),
    elements=st.floats(10.0, 4000.0, allow_nan=False),
)


class TestMMcProperties:
    @given(
        st.floats(0.1, 50.0),
        st.floats(1.0, 100.0),
        st.integers(1, 64),
    )
    def test_erlang_c_is_probability(self, arrival, service, servers):
        queue = MMcQueue(arrival, service, servers)
        assert 0.0 <= queue.erlang_c() <= 1.0

    @given(st.floats(10.0, 90.0), st.integers(2, 32))
    def test_more_servers_never_slower(self, load_percent, servers):
        arrival = load_percent  # with mu=100, rho = load/ (servers*100)
        slow = MMcQueue(arrival, 100.0, servers)
        fast = MMcQueue(arrival, 100.0, servers + 1)
        assert fast.mean_wait() <= slow.mean_wait() + 1e-12

    @given(st.floats(0.5, 0.99), st.floats(0.5, 0.99))
    def test_wait_quantile_monotone_in_q(self, q1, q2):
        queue = MMcQueue(arrival_rate=350.0, service_rate=100.0, servers=4)
        lo, hi = sorted((q1, q2))
        assert queue.wait_quantile(lo) <= queue.wait_quantile(hi) + 1e-12

    @given(st.floats(1.0, 1000.0), st.integers(1, 50))
    def test_stability_criterion(self, arrival, servers):
        queue = MMcQueue(arrival, 10.0, servers)
        if queue.utilization < 1.0:
            assert math.isfinite(queue.mean_wait())
        else:
            assert queue.mean_wait() == math.inf


class TestReplayProperties:
    @settings(max_examples=20, deadline=None)
    @given(workloads)
    def test_exact_plans_rarely_violate_at_long_intervals(self, w):
        plan = solve_closed_form(w, 60.0)
        result = replay_plan(
            plan, w, interval_seconds=3600.0,
            storage=SharedStorage(jitter_fraction=0.0),
        )
        # With hour-long intervals, warm-up (seconds) is invisible except
        # for razor-edge demand; every violation must be warm-up-tagged.
        for outcome in result.outcomes:
            if outcome.violated:
                assert outcome.warmup_limited

    @settings(max_examples=20, deadline=None)
    @given(workloads)
    def test_node_seconds_bounded_by_plan(self, w):
        plan = solve_closed_form(w, 60.0)
        result = replay_plan(plan, w, interval_seconds=600.0)
        upper = plan.nodes.max() * 600.0 * len(w)
        assert 0.0 < result.total_node_seconds <= upper + 1e-6

    @settings(max_examples=20, deadline=None)
    @given(workloads, st.integers(1, 5))
    def test_overprovisioned_plans_never_violate(self, w, extra):
        plan = solve_closed_form(w, 60.0)
        padded = ScalingPlan(nodes=plan.nodes + extra, threshold=60.0)
        result = replay_plan(
            padded, w, interval_seconds=3600.0,
            storage=SharedStorage(jitter_fraction=0.0),
            initial_nodes=int(padded.nodes[0]),
        )
        assert result.violation_rate == 0.0
