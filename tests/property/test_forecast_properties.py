"""Property-based tests for forecast containers, ensembling, anomalies."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.forecast import QuantileForecast, combine_quantile_forecasts
from repro.traces import Trace, inject_level_shift, inject_outage_dip

LEVELS = (0.1, 0.5, 0.9)


def make_fan(base: np.ndarray, widths: np.ndarray) -> QuantileForecast:
    values = np.stack([base - widths, base, base + widths])
    return QuantileForecast(levels=np.array(LEVELS), values=values)


fans = st.builds(
    make_fan,
    arrays(np.float64, st.just(5), elements=st.floats(10, 500)),
    arrays(np.float64, st.just(5), elements=st.floats(0.0, 50)),
)


class TestEnsembleProperties:
    @settings(max_examples=50)
    @given(st.lists(fans, min_size=1, max_size=5))
    def test_combined_monotone(self, members):
        combined = combine_quantile_forecasts(members, LEVELS)
        assert np.all(np.diff(combined.values, axis=0) >= -1e-9)

    @settings(max_examples=50)
    @given(st.lists(fans, min_size=1, max_size=5))
    def test_combined_within_member_envelope(self, members):
        combined = combine_quantile_forecasts(members, LEVELS)
        for i, tau in enumerate(LEVELS):
            stack = np.stack([m.at(tau) for m in members])
            assert np.all(combined.values[i] >= stack.min(axis=0) - 1e-9)
            assert np.all(combined.values[i] <= stack.max(axis=0) + 1e-9)

    @settings(max_examples=30)
    @given(fans)
    def test_single_member_identity(self, fan):
        combined = combine_quantile_forecasts([fan], LEVELS)
        np.testing.assert_allclose(combined.values, fan.values)


traces = st.builds(
    lambda v: Trace("t", v),
    arrays(np.float64, st.integers(20, 60), elements=st.floats(10.0, 2000.0)),
)


class TestAnomalyProperties:
    @settings(max_examples=50)
    @given(traces, st.integers(0, 10), st.floats(-500, 500))
    def test_level_shift_preserves_prefix(self, trace, start, magnitude):
        shifted = inject_level_shift(trace, start, magnitude)
        np.testing.assert_array_equal(shifted.values[:start], trace.values[:start])
        assert np.all(shifted.values >= 0)

    @settings(max_examples=50)
    @given(traces, st.integers(0, 5), st.integers(1, 10), st.floats(0.0, 1.0))
    def test_outage_never_raises_load_during_dip(
        self, trace, start, duration, residual
    ):
        if start + duration > len(trace):
            duration = len(trace) - start
            if duration < 1:
                return
        out = inject_outage_dip(
            trace, start, duration,
            residual_fraction=residual, retry_surge_fraction=0.0,
        )
        window = slice(start, start + duration)
        assert np.all(out.values[window] <= trace.values[window] + 1e-9)

    @settings(max_examples=50)
    @given(traces, st.integers(0, 10), st.floats(-500, 500))
    def test_injection_is_pure(self, trace, start, magnitude):
        before = trace.values.copy()
        inject_level_shift(trace, start, magnitude)
        np.testing.assert_array_equal(trace.values, before)
