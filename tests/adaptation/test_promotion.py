"""Tests for the canary promotion policy and its spec grammar."""

from types import SimpleNamespace

import pytest

from repro.adaptation import (
    GUARDING,
    IDLE,
    SHADOWING,
    STATES,
    PromotionPolicy,
    parse_promotion_policy,
)


def window(mean_wql, calibration_error=0.05):
    """A minimal WindowStats stand-in: decide() reads only two fields."""
    return SimpleNamespace(mean_wql=mean_wql, calibration_error=calibration_error)


class TestStates:
    def test_vocabulary(self):
        assert STATES == (IDLE, SHADOWING, GUARDING)
        assert len(set(STATES)) == 3


class TestPolicyValidation:
    def test_defaults(self):
        policy = PromotionPolicy()
        assert policy.wql_ratio == 0.95
        assert policy.calibration_slack == 0.1
        assert policy.soak_windows == 2
        assert policy.guard_windows == 4

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"wql_ratio": 0.0},
            {"wql_ratio": -1.0},
            {"calibration_slack": -0.01},
            {"soak_windows": 0},
            {"guard_windows": -1},
        ],
    )
    def test_rejects_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            PromotionPolicy(**kwargs)


class TestSpecGrammar:
    def test_full_spec(self):
        policy = parse_promotion_policy("wql<=0.9 cal<=0.2 soak=3 guard=5")
        assert policy == PromotionPolicy(0.9, 0.2, 3, 5)

    def test_partial_spec_keeps_defaults(self):
        policy = parse_promotion_policy("soak=1")
        assert policy == PromotionPolicy(soak_windows=1)

    def test_commas_and_equals_accepted(self):
        policy = parse_promotion_policy("wql=0.8,guard=0")
        assert policy.wql_ratio == 0.8
        assert policy.guard_windows == 0

    def test_empty_spec_is_default_policy(self):
        assert parse_promotion_policy("") == PromotionPolicy()
        assert parse_promotion_policy("   ") == PromotionPolicy()

    @pytest.mark.parametrize("spec", ["bogus=1", "wql>0.9", "wql", "soak=two"])
    def test_malformed_tokens_raise(self, spec):
        with pytest.raises(ValueError):
            parse_promotion_policy(spec)

    def test_spec_round_trips(self):
        policy = PromotionPolicy(0.85, 0.25, 4, 6)
        assert parse_promotion_policy(policy.spec) == policy


class TestDecide:
    def test_soaking_until_enough_shadow_windows(self):
        policy = PromotionPolicy(soak_windows=3)
        promote, reason = policy.decide([window(0.1)], [window(1.0)] * 3)
        assert not promote
        assert "soaking" in reason

    def test_requires_incumbent_windows(self):
        policy = PromotionPolicy(soak_windows=1)
        promote, reason = policy.decide([window(0.1)], [])
        assert not promote
        assert "incumbent" in reason

    def test_promotes_on_better_wql(self):
        policy = PromotionPolicy(soak_windows=2)
        promote, reason = policy.decide(
            [window(0.5), window(0.5)], [window(1.0), window(1.0)]
        )
        assert promote
        assert "0.5000" in reason

    def test_blocks_when_wql_not_better_enough(self):
        # 0.94 of incumbent is within the default 0.95 ratio; 0.96 is not.
        policy = PromotionPolicy(soak_windows=1)
        assert policy.decide([window(0.94)], [window(1.0)])[0]
        promote, reason = policy.decide([window(0.96)], [window(1.0)])
        assert not promote
        assert "wQL not better" in reason

    def test_blocks_on_worse_calibration(self):
        policy = PromotionPolicy(soak_windows=1, calibration_slack=0.1)
        promote, reason = policy.decide(
            [window(0.1, calibration_error=0.4)],
            [window(1.0, calibration_error=0.1)],
        )
        assert not promote
        assert "calibration worse" in reason

    def test_compares_only_the_soak_tail(self):
        # Ancient terrible shadow windows must not block promotion.
        policy = PromotionPolicy(soak_windows=2)
        candidate = [window(9.0), window(0.5), window(0.5)]
        incumbent = [window(1.0)] * 3
        assert policy.decide(candidate, incumbent)[0]
