"""Deterministic forecaster/planner doubles for adaptation tests.

The scenarios need a forecaster whose staleness is controllable: a
:class:`FakeForecaster` anchors a flat quantile fan at the mean of the
series tail it was fitted on, so a model fitted pre-shift keeps
forecasting the old level (stale) while a refit clone tracks the
stream.  Real models are exercised in the integration tests; these
doubles keep the state-machine tests fast and exact.
"""

from __future__ import annotations

import numpy as np

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes
from repro.forecast.base import QuantileForecast
from repro.obs import AlertEngine, ModelHealthMonitor, parse_rule

LEVELS = (0.1, 0.5, 0.9)
THRESHOLD = 200.0


class FakeForecaster:
    """Flat quantile fan centred on the fitted level of the series tail."""

    def __init__(self, horizon: int = 4, spread: float = 20.0, tail: int = 12):
        self.horizon = horizon
        self.spread = spread
        self.tail = tail
        self.center: "float | None" = None
        self.fit_lengths: list[int] = []

    def fit(self, series):
        series = np.asarray(series, dtype=np.float64)
        self.center = float(np.mean(series[-self.tail :]))
        self.fit_lengths.append(len(series))
        return self

    def predict(self, context, levels=None, start_index=0):
        levels = np.asarray(
            LEVELS if levels is None else levels, dtype=np.float64
        )
        offsets = (levels - 0.5) * 2.0 * self.spread
        values = self.center + np.tile(offsets[:, None], (1, self.horizon))
        return QuantileForecast(levels=levels, values=values)


class BrokenForecaster(FakeForecaster):
    """Pool candidate that always fails to fit."""

    def fit(self, series):
        raise ValueError("broken candidate")


class BadForecaster(FakeForecaster):
    """Fits to a fixed absurd level — the injectable bad candidate."""

    def __init__(self, horizon: int = 4, level: float = 1000.0):
        super().__init__(horizon=horizon)
        self.center = level

    def fit(self, series):
        return self


class FakePlanner:
    """Forecaster-backed planner double exposing ``.forecaster`` to swap."""

    name = "fake-planner"

    def __init__(self, forecaster, threshold: float = THRESHOLD):
        self.forecaster = forecaster
        self.threshold = threshold
        self.quantile_levels = LEVELS

    def plan(self, context, start_index=0):
        forecast = self.forecaster.predict(
            np.asarray(context, dtype=np.float64),
            levels=np.asarray(self.quantile_levels),
            start_index=start_index,
        )
        return ScalingPlan(
            nodes=required_nodes(forecast.values[-1], self.threshold),
            threshold=self.threshold,
            strategy=self.name,
            quantile_levels=(self.quantile_levels[-1],),
            metadata={
                "forecast_levels": forecast.levels,
                "forecast_values": forecast.values,
            },
        )


def make_runtime(
    forecaster,
    *,
    context: int = 8,
    horizon: int = 4,
    window: int = 10,
    rules: "tuple[str, ...]" = (),
    detectors: "list | None" = None,
    replan_every: int = 4,
    start_tick: int = 0,
    record_provenance: bool = False,
) -> AutoscalingRuntime:
    monitor = ModelHealthMonitor(
        window=window,
        detectors=detectors if detectors is not None else [],
        alerts=AlertEngine([parse_rule(r) for r in rules]) if rules else None,
    )
    return AutoscalingRuntime(
        planner=FakePlanner(forecaster),
        context_length=context,
        horizon=horizon,
        threshold=THRESHOLD,
        replan_every=replan_every,
        start_tick=start_tick,
        monitor=monitor,
        record_provenance=record_provenance,
    )


def drive(runtime, manager, values):
    """Step the runtime over ``values``, feeding the manager per tick."""
    results = []
    for value in values:
        result = runtime.step(float(value))
        manager.on_tick(result.tick, result.observed, result.planned)
        results.append(result)
    return results
