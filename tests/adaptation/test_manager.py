"""Tests for the AdaptationManager canary state machine."""

import json

import numpy as np
import pytest

from repro.adaptation import (
    GUARDING,
    IDLE,
    SHADOWING,
    AdaptationError,
    AdaptationManager,
    ModelPool,
    PromotionPolicy,
)
from repro.core import AutoscalingRuntime

from tests.adaptation.doubles import (
    BadForecaster,
    BrokenForecaster,
    FakeForecaster,
    FakePlanner,
    drive,
    make_runtime,
)

STABLE = 100.0
SHIFTED = 300.0


def fitted_fake(level=STABLE):
    return FakeForecaster().fit(np.full(20, level))


def make_manager(runtime, **kwargs):
    kwargs.setdefault(
        "policy",
        PromotionPolicy(
            wql_ratio=0.95, calibration_slack=1.0, soak_windows=1, guard_windows=1
        ),
    )
    kwargs.setdefault("cooldown", 5)
    return AdaptationManager(runtime, **kwargs)


class TestConstruction:
    def test_requires_a_monitor(self):
        runtime = AutoscalingRuntime(
            planner=FakePlanner(fitted_fake()),
            context_length=8,
            horizon=4,
            threshold=200.0,
        )
        with pytest.raises(ValueError, match="health monitor"):
            AdaptationManager(runtime)

    def test_validates_parameters(self):
        runtime = make_runtime(fitted_fake())
        with pytest.raises(ValueError):
            AdaptationManager(runtime, shadow_window=0)
        with pytest.raises(ValueError):
            AdaptationManager(runtime, cooldown=-1)

    def test_policy_accepts_spec_string(self):
        runtime = make_runtime(fitted_fake())
        manager = AdaptationManager(runtime, policy="soak=1 guard=0")
        assert manager.policy.soak_windows == 1
        assert manager.policy.guard_windows == 0

    def test_starts_idle(self):
        manager = make_manager(make_runtime(fitted_fake()))
        assert manager.state == IDLE
        assert manager.candidate is None


class TestRefit:
    def test_needs_enough_history(self):
        manager = make_manager(make_runtime(fitted_fake()))
        with pytest.raises(AdaptationError, match="not enough history"):
            manager.refit()

    def test_manual_refit_starts_shadowing(self):
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime)
        drive(runtime, manager, np.full(20, STABLE))
        event = manager.refit(reason="operator")
        assert manager.state == SHADOWING
        assert manager.candidate is not None
        assert manager.candidate is not runtime.planner.forecaster
        assert manager.shadow_monitor is not None
        assert manager.refits == 1
        assert event["action"] == "refit"
        assert event["reason"] == "operator"
        # FakeForecaster has no warm_start parameter -> cold clone refit.
        assert event["mode"] == "cold"

    def test_refit_while_shadowing_requires_force(self):
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime)
        drive(runtime, manager, np.full(20, STABLE))
        manager.refit()
        with pytest.raises(AdaptationError, match="force"):
            manager.refit()
        first_candidate = manager.candidate
        manager.refit(force=True)
        assert manager.state == SHADOWING
        assert manager.candidate is not first_candidate
        assert manager.rejections == 1
        assert manager.refits == 2

    def test_invalid_strategy_rejected(self):
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime)
        drive(runtime, manager, np.full(20, STABLE))
        with pytest.raises(ValueError, match="strategy"):
            manager.refit(strategy="bogus")
        with pytest.raises(AdaptationError, match="pool"):
            manager.refit(strategy="pool")

    def test_invalid_transitions_raise(self):
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime)
        with pytest.raises(AdaptationError):
            manager.promote()
        with pytest.raises(AdaptationError):
            manager.rollback()
        with pytest.raises(AdaptationError):
            manager.reject()


class TestPromotionFlow:
    def promote_scenario(self, **manager_kwargs):
        """Stable phase, shift, manual refit -> returns runtime+manager."""
        runtime = make_runtime(fitted_fake(), record_provenance=True)
        manager = make_manager(runtime, **manager_kwargs)
        drive(runtime, manager, np.full(30, STABLE))
        drive(runtime, manager, np.full(8, SHIFTED))  # incumbent goes stale
        manager.refit(reason="test")
        return runtime, manager

    def test_shadow_candidate_is_scored_not_actuated(self):
        runtime, manager = self.promote_scenario(
            policy=PromotionPolicy(soak_windows=9, guard_windows=1)
        )
        nodes_before = runtime.decisions[-1].plan.nodes[0]
        drive(runtime, manager, np.full(6, SHIFTED))
        assert manager.shadow_monitor.steps_observed == 6
        # Still shadowing: the live allocation is the stale incumbent's.
        assert manager.state == SHADOWING
        assert runtime.decisions[-1].plan.nodes[0] == nodes_before

    def test_candidate_promoted_then_committed(self):
        runtime, manager = self.promote_scenario()
        stale = runtime.planner.forecaster
        drive(runtime, manager, np.full(40, SHIFTED))
        # Promotion swapped the candidate in and the guard committed it.
        assert manager.promotions == 1
        assert manager.state == IDLE
        assert manager.previous is None
        assert runtime.planner.forecaster is not stale
        # The candidate was fit on a tail spanning the shift, so its
        # level tracks the new regime (the stale incumbent stays at 100).
        assert runtime.planner.forecaster.center > 200.0
        actions = [e["action"] for e in manager.events]
        assert actions.count("promote") == 1
        assert actions.count("commit") == 1
        assert actions.index("promote") < actions.index("commit")

    def test_promoted_model_drives_allocations(self):
        runtime, manager = self.promote_scenario()
        drive(runtime, manager, np.full(40, SHIFTED))
        # center 300, q0.9 = 316 -> 2 nodes at threshold 200 (stale: 1).
        assert runtime.decisions[-1].plan.nodes[0] == 2

    def test_promotion_writes_provenance(self):
        runtime, manager = self.promote_scenario()
        drive(runtime, manager, np.full(40, SHIFTED))
        promoted = [
            r for r in runtime.provenance if r["source"] == "promoted"
        ]
        assert len(promoted) == 1
        assert promoted[0]["mode"] == "cold"

    def test_reject_when_shadow_budget_expires(self):
        # Stream never shifts: the candidate ties the incumbent, which
        # the <1 wql ratio refuses, and the budget runs out.
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime, shadow_window=15)
        drive(runtime, manager, np.full(30, STABLE))
        manager.refit()
        drive(runtime, manager, np.full(20, STABLE))
        assert manager.state == IDLE
        assert manager.rejections == 1
        assert manager.promotions == 0
        reject = [e for e in manager.events if e["action"] == "reject"][0]
        assert "budget" in reject["reason"]


class TestGuardAndRollback:
    def rollback_scenario(self):
        """Promote a good candidate at a window boundary, keep guarding."""
        runtime = make_runtime(
            fitted_fake(), rules=("mean_wql > 0.5",)
        )
        manager = make_manager(
            runtime,
            policy=PromotionPolicy(
                wql_ratio=0.95,
                calibration_slack=1.0,
                soak_windows=1,
                guard_windows=3,
            ),
            auto_refit=False,
        )
        drive(runtime, manager, np.full(30, STABLE))
        drive(runtime, manager, np.full(8, SHIFTED))
        manager.refit(reason="test")
        drive(runtime, manager, np.full(20, SHIFTED))
        assert manager.state == GUARDING
        return runtime, manager

    def test_post_promotion_breach_rolls_back(self):
        runtime, manager = self.rollback_scenario()
        promoted = runtime.planner.forecaster
        previous = manager.previous
        # A second shift the promoted model cannot track: the next fully
        # post-promotion window breaches mean_wql and the guard fires.
        drive(runtime, manager, np.full(25, 900.0))
        assert manager.rollbacks == 1
        assert manager.state == IDLE
        assert runtime.planner.forecaster is previous
        assert runtime.planner.forecaster is not promoted
        rollback = [e for e in manager.events if e["action"] == "rollback"][0]
        assert rollback["reason"].startswith("alert:")

    def test_quiet_guard_commits(self):
        runtime, manager = self.rollback_scenario()
        promoted = runtime.planner.forecaster
        drive(runtime, manager, np.full(30, SHIFTED))
        assert manager.state == IDLE
        assert manager.rollbacks == 0
        assert manager.previous is None
        assert runtime.planner.forecaster is promoted

    def test_straddling_window_alert_does_not_rollback(self):
        # Promote mid-window with a bad candidate: the first closing
        # window straddles the promotion (it carries incumbent
        # residuals too) so its alert must NOT trigger a rollback.
        runtime = make_runtime(
            fitted_fake(), rules=("mean_wql > 0.5",)
        )
        manager = make_manager(
            runtime,
            policy=PromotionPolicy(soak_windows=1, guard_windows=1),
            auto_refit=False,
        )
        drive(runtime, manager, np.full(33, STABLE))  # mid-window (10s)
        manager.refit(reason="test")
        manager.candidate = BadForecaster()
        manager.promote(reason="test")
        drive(runtime, manager, np.full(6, STABLE))
        straddling = [a for a in runtime.monitor.alerts.alerts]
        assert straddling, "the straddling window must breach"
        assert manager.rollbacks == 0

    def test_bad_candidate_promoted_at_boundary_rolls_back(self):
        # Promotion lands exactly on a window boundary, so the very
        # first closing window is fully post-promotion and its breach
        # (the engine was calm before) rolls the bad candidate back.
        runtime = make_runtime(
            fitted_fake(), rules=("mean_wql > 0.5",)
        )
        manager = make_manager(
            runtime,
            policy=PromotionPolicy(soak_windows=1, guard_windows=3),
            auto_refit=False,
        )
        drive(runtime, manager, np.full(38, STABLE))  # windows 8-17..28-37
        incumbent = runtime.planner.forecaster
        manager.refit(reason="test")
        manager.candidate = BadForecaster()
        manager.promote(reason="inject bad candidate")
        drive(runtime, manager, np.full(15, STABLE))
        assert manager.rollbacks == 1
        assert manager.state == IDLE
        assert runtime.planner.forecaster is incumbent


class TestAutoRefit:
    def test_alert_triggers_refit(self):
        runtime = make_runtime(fitted_fake(), rules=("mean_wql > 0.5",))
        manager = make_manager(runtime, auto_refit=True)
        drive(runtime, manager, np.full(30, STABLE))
        assert manager.refits == 0
        drive(runtime, manager, np.full(15, SHIFTED))
        assert manager.refits == 1
        assert manager.state == SHADOWING
        refit = [e for e in manager.events if e["action"] == "refit"][0]
        assert refit["reason"].startswith("alert:")

    def test_auto_refit_can_be_disabled(self):
        runtime = make_runtime(fitted_fake(), rules=("mean_wql > 0.5",))
        manager = make_manager(runtime, auto_refit=False)
        drive(runtime, manager, np.full(45, SHIFTED))
        assert len(runtime.monitor.alerts.alerts) >= 1
        assert manager.refits == 0

    def test_refit_failure_is_an_event_not_a_crash(self):
        # The history buffer is too small to ever satisfy a refit, so
        # the alert-driven refit fails — logged, not raised.
        runtime = make_runtime(fitted_fake(STABLE), rules=("mean_wql > 0.5",))
        manager = make_manager(runtime, history_size=8)
        drive(runtime, manager, np.full(18, SHIFTED))
        failures = [
            e for e in manager.events if e["action"] == "refit_failed"
        ]
        assert failures
        assert "not enough history" in failures[0]["reason"]
        assert manager.state == IDLE

    def test_cooldown_suppresses_alert_refits(self):
        runtime = make_runtime(fitted_fake(), rules=("mean_wql > 0.5",))
        manager = make_manager(runtime, shadow_window=12, cooldown=1000)
        drive(runtime, manager, np.full(30, STABLE))
        drive(runtime, manager, np.full(15, SHIFTED))
        assert manager.refits == 1
        # Budget expires -> reject -> cooldown.  The rule re-fires on
        # later windows (re-armed by the candidate evaluation gap) but
        # the cooldown must swallow it.
        drive(runtime, manager, np.full(40, SHIFTED))
        assert manager.state == IDLE
        refits_after_reject = manager.refits
        drive(runtime, manager, np.full(40, 900.0))
        assert manager.refits == refits_after_reject


class TestPoolStrategy:
    def test_pool_reselection_becomes_the_candidate(self):
        pool = ModelPool(
            {
                "biased": lambda: FakeForecaster(spread=2000.0),
                "tracking": lambda: FakeForecaster(),
            }
        )
        runtime = make_runtime(fitted_fake())
        manager = make_manager(runtime, pool=pool)
        drive(runtime, manager, np.full(30, STABLE))
        event = manager.refit()  # default strategy becomes "pool"
        assert event["strategy"] == "pool"
        assert event["mode"] == "pool:tracking"
        assert set(event["scores"]) == {"biased", "tracking"}
        assert manager.candidate.spread == 20.0


class TestStatusAndCheckpoint:
    def shadowing_manager(self):
        runtime = make_runtime(fitted_fake(), record_provenance=True)
        manager = make_manager(runtime)
        drive(runtime, manager, np.full(30, STABLE))
        drive(runtime, manager, np.full(8, SHIFTED))
        manager.refit(reason="test")
        drive(runtime, manager, np.full(4, SHIFTED))
        assert manager.state == SHADOWING
        return runtime, manager

    def test_status_is_json_safe(self):
        _, manager = self.shadowing_manager()
        status = json.loads(json.dumps(manager.status()))
        assert status["state"] == SHADOWING
        assert status["candidate"] == "FakeForecaster"
        assert status["refits"] == 1
        assert status["shadow_ticks"] == 4

    def test_state_dict_round_trips_mid_shadow(self):
        runtime, manager = self.shadowing_manager()
        blob = json.dumps(manager.state_dict())

        fresh_runtime = make_runtime(fitted_fake(), record_provenance=True)
        fresh_runtime.load_state_dict(runtime.state_dict())
        fresh_runtime.monitor.load_state_dict(runtime.monitor.state_dict())
        fresh = make_manager(fresh_runtime)
        fresh.load_state_dict(json.loads(blob))

        assert fresh.state == SHADOWING
        assert fresh.candidate.center == manager.candidate.center
        # Continue both loops in lockstep: decisions and adaptation
        # events must stay bit-identical.
        tail = np.full(40, SHIFTED)
        original = drive(runtime, manager, tail)
        restored = drive(fresh_runtime, fresh, tail)
        assert [r.target_nodes for r in original] == [
            r.target_nodes for r in restored
        ]
        assert manager.events == fresh.events
        assert manager.state == fresh.state == IDLE
        assert manager.promotions == fresh.promotions == 1
        assert (
            runtime.planner.forecaster.center
            == fresh_runtime.planner.forecaster.center
        )

    def test_version_mismatch_rejected(self):
        _, manager = self.shadowing_manager()
        state = manager.state_dict()
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            manager.load_state_dict(state)
