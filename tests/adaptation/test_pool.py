"""Tests for holdout-scored model-pool reselection."""

import numpy as np
import pytest

from repro.adaptation import ModelPool
from repro.obs import InMemorySink, MetricsRegistry, using_registry

from tests.adaptation.doubles import BrokenForecaster, FakeForecaster

SERIES = np.concatenate([np.full(30, 100.0), np.full(20, 300.0)])
SELECT_KWARGS = dict(context_length=8, horizon=4, levels=(0.1, 0.5, 0.9))


class TestRegistry:
    def test_register_and_names(self):
        pool = ModelPool().register("a", FakeForecaster)
        pool.register("b", FakeForecaster)
        assert pool.names() == ["a", "b"]
        assert len(pool) == 2

    def test_duplicate_name_rejected(self):
        pool = ModelPool({"a": FakeForecaster})
        with pytest.raises(ValueError, match="already registered"):
            pool.register("a", FakeForecaster)

    def test_empty_pool_cannot_select(self):
        with pytest.raises(ValueError, match="empty"):
            ModelPool().select(SERIES, **SELECT_KWARGS)


class TestSelection:
    def test_picks_the_lower_wql_candidate(self):
        # The tracking fake anchors at the series tail (300); the stale
        # fake averages over a long tail that still includes the old
        # level, so its holdout wQL is worse.
        pool = ModelPool(
            {
                "stale": lambda: FakeForecaster(tail=45),
                "tracking": lambda: FakeForecaster(tail=8),
            }
        )
        name, winner, scores = pool.select(SERIES, **SELECT_KWARGS)
        assert name == "tracking"
        assert scores["tracking"] < scores["stale"]
        assert winner.tail == 8

    def test_winner_is_refit_on_the_full_series(self):
        pool = ModelPool({"only": FakeForecaster})
        _, winner, _ = pool.select(SERIES, **SELECT_KWARGS)
        # One fit on the holdout split, then a final fit on everything.
        assert winner.fit_lengths[-1] == len(SERIES)

    def test_registration_order_breaks_ties(self):
        pool = ModelPool(
            {"first": FakeForecaster, "second": FakeForecaster}
        )
        name, _, scores = pool.select(SERIES, **SELECT_KWARGS)
        assert name == "first"
        assert scores["first"] == scores["second"]

    def test_failing_candidate_scores_inf_and_is_skipped(self):
        sink = InMemorySink()
        pool = ModelPool(
            {"broken": BrokenForecaster, "ok": FakeForecaster}
        )
        with using_registry(MetricsRegistry(sinks=[sink])):
            name, _, scores = pool.select(SERIES, **SELECT_KWARGS)
        assert name == "ok"
        assert scores["broken"] == float("inf")
        failures = [
            r
            for r in sink.records
            if r.get("name") == "adaptation.pool_candidate_failed"
        ]
        assert failures and failures[0]["candidate"] == "broken"

    def test_all_candidates_failing_raises(self):
        pool = ModelPool({"a": BrokenForecaster, "b": BrokenForecaster})
        with pytest.raises(ValueError, match="every pool candidate"):
            pool.select(SERIES, **SELECT_KWARGS)

    def test_short_series_rejected(self):
        pool = ModelPool({"a": FakeForecaster})
        with pytest.raises(ValueError, match="at least"):
            pool.select(SERIES[:10], **SELECT_KWARGS)
