"""Tests for the forecast-quality metrics (Section IV-B)."""

import numpy as np
import pytest

from repro.evaluation import (
    ForecastReport,
    calibration_table,
    coverage,
    evaluate_quantile_forecast,
    format_table,
    mae,
    mape,
    mean_weighted_quantile_loss,
    mse,
    quantile_loss,
    weighted_quantile_loss,
)


class TestQuantileLoss:
    def test_perfect_forecast_zero_loss(self):
        y = np.array([1.0, 2.0, 3.0])
        assert quantile_loss(y, y, 0.9) == 0.0

    def test_asymmetric_penalty_high_tau(self):
        y = np.array([10.0])
        under = quantile_loss(y, np.array([8.0]), 0.9)  # forecast below target
        over = quantile_loss(y, np.array([12.0]), 0.9)
        assert under == pytest.approx(0.9 * 2.0)
        assert over == pytest.approx(0.1 * 2.0)
        assert under > over

    def test_asymmetric_penalty_low_tau(self):
        y = np.array([10.0])
        under = quantile_loss(y, np.array([8.0]), 0.1)
        over = quantile_loss(y, np.array([12.0]), 0.1)
        assert over > under

    def test_sums_over_all_elements(self):
        y = np.zeros((3, 2))
        pred = np.ones((3, 2))
        assert quantile_loss(y, pred, 0.5) == pytest.approx(0.5 * 6)

    def test_median_minimised_by_median(self):
        rng = np.random.default_rng(0)
        y = rng.exponential(2.0, size=10000)
        losses = {
            q: quantile_loss(y, np.full_like(y, np.quantile(y, q_hat)), 0.5)
            for q, q_hat in [(0.3, 0.3), (0.5, 0.5), (0.7, 0.7)]
        }
        assert losses[0.5] == min(losses.values())

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            quantile_loss(np.ones(2), np.ones(2), 1.5)


class TestWeightedQuantileLoss:
    def test_normalised_by_target_sum(self):
        y = np.array([10.0, 10.0])
        pred = np.array([8.0, 8.0])
        ql = quantile_loss(y, pred, 0.9)
        assert weighted_quantile_loss(y, pred, 0.9) == pytest.approx(2 * ql / 20.0)

    def test_scale_invariant(self):
        y = np.array([10.0, 20.0])
        pred = np.array([12.0, 18.0])
        a = weighted_quantile_loss(y, pred, 0.8)
        b = weighted_quantile_loss(10 * y, 10 * pred, 0.8)
        assert a == pytest.approx(b)

    def test_zero_target_rejected(self):
        with pytest.raises(ValueError):
            weighted_quantile_loss(np.zeros(3), np.ones(3), 0.5)

    def test_mean_wql_averages(self):
        y = np.array([10.0, 10.0])
        forecasts = {0.5: np.array([9.0, 9.0]), 0.9: np.array([12.0, 12.0])}
        expected = np.mean(
            [weighted_quantile_loss(y, v, t) for t, v in forecasts.items()]
        )
        assert mean_weighted_quantile_loss(y, forecasts) == pytest.approx(expected)

    def test_mean_wql_rejects_empty(self):
        with pytest.raises(ValueError):
            mean_weighted_quantile_loss(np.ones(2), {})


class TestCoverage:
    def test_perfect_coverage_values(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.array([2.0, 1.0, 4.0, 5.0])  # covers 1st, 3rd, 4th
        assert coverage(y, pred) == pytest.approx(0.75)

    def test_calibrated_gaussian_coverage(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=20000)
        from scipy import stats

        for tau in (0.7, 0.9):
            pred = np.full_like(y, stats.norm.ppf(tau))
            assert coverage(y, pred) == pytest.approx(tau, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coverage(np.array([]), np.array([]))

    def test_nan_targets_count_as_not_covered(self):
        # Missing observations must lower coverage (conservative), never
        # propagate NaN into the calibration statistics.
        y = np.array([1.0, np.nan, 1.0, np.nan])
        pred = np.full(4, 2.0)
        result = coverage(y, pred)
        assert not np.isnan(result)
        assert result == pytest.approx(0.5)

    def test_all_nan_targets_give_zero_coverage(self):
        assert coverage(np.full(3, np.nan), np.full(3, 2.0)) == 0.0


class TestPointMetrics:
    def test_mse(self):
        assert mse(np.array([0.0, 0.0]), np.array([1.0, 3.0])) == pytest.approx(5.0)

    def test_mae(self):
        assert mae(np.array([0.0, 0.0]), np.array([1.0, -3.0])) == pytest.approx(2.0)

    def test_mape(self):
        assert mape(np.array([10.0]), np.array([11.0])) == pytest.approx(0.1)

    def test_calibration_table_sorted(self):
        y = np.zeros(4)
        table = calibration_table(
            y, {0.9: np.ones(4), 0.5: np.array([1.0, -1.0, 1.0, -1.0])}
        )
        assert list(table) == [0.5, 0.9]
        assert table[0.9] == 1.0
        assert table[0.5] == 0.5

    def test_calibration_table_rejects_tau_outside_unit_interval(self):
        y = np.zeros(4)
        for bad_tau in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError, match=r"quantile level"):
                calibration_table(y, {bad_tau: np.ones(4)})

    def test_calibration_table_rejects_empty_target(self):
        with pytest.raises(ValueError):
            calibration_table(np.array([]), {0.5: np.array([])})


class TestReport:
    def make_report(self):
        rng = np.random.default_rng(2)
        y = rng.uniform(10, 20, size=50)
        forecasts = {tau: y + (tau - 0.5) * 4 for tau in (0.5, 0.7, 0.8, 0.9)}
        return evaluate_quantile_forecast("TFT", "alibaba", y, forecasts)

    def test_report_fields(self):
        report = self.make_report()
        assert report.model == "TFT"
        assert report.mean_wql > 0
        assert set(report.wql) == {0.7, 0.8, 0.9}
        assert report.coverage[0.9] == 1.0  # y + 1.6 always covers y

    def test_point_defaults_to_quantile_mean(self):
        y = np.full(4, 10.0)
        forecasts = {0.4: np.full(4, 8.0), 0.6: np.full(4, 12.0)}
        report = evaluate_quantile_forecast("m", "d", y, forecasts)
        assert report.mse == pytest.approx(0.0)  # mean of 8 and 12 is 10

    def test_format_table_contains_rows(self):
        text = format_table([self.make_report()], title="Table I")
        assert "Table I" in text
        assert "TFT" in text
        assert "mean_wQL" in text

    def test_as_row_length(self):
        assert len(self.make_report().as_row()) == 9
