"""Lifecycle of the shared-memory payload path (:mod:`repro.parallel`).

Large arrays in a pool payload travel as :class:`SharedArrayRef`
metadata while the bytes live once in ``multiprocessing.shared_memory``
segments.  These tests pin the contract: content-addressed dedup,
ref-counted unlink, read-only attached views, a loud error (not a hang)
when a segment is missing, and — the part that bites in production —
no segments left behind in ``/dev/shm`` after pools shut down.
"""

from __future__ import annotations

import glob
import os

import numpy as np
import pytest

from repro.evaluation.backtest import backtest
from repro.forecast import DeepARForecaster, TrainingConfig
from repro.parallel import (
    SHARED_MIN_BYTES,
    SharedArrayRef,
    SharedArrayStore,
    SharedSegmentMissingError,
    chunk_evenly,
    close_attachments,
    dumps_shared,
    get_array_store,
    loads_shared,
    shutdown_shared_pool,
)


def _own_segments() -> list[str]:
    """This process's repro-prefixed segments currently in /dev/shm."""
    return sorted(glob.glob(f"/dev/shm/repro{os.getpid()}_*"))


# -- SharedArrayStore ------------------------------------------------------


def test_store_publishes_and_unlinks_refcounted():
    store = SharedArrayStore()
    array = np.arange(1024, dtype=np.float64)
    ref = store.publish(array)
    again = store.publish(array.copy())  # same content -> same segment
    assert again.name == ref.name and again.digest == ref.digest
    assert len(store) == 1

    store.release(ref.digest)
    assert len(store) == 1  # second ref still holds it
    store.release(ref.digest)
    assert len(store) == 0
    assert not any(ref.name in path for path in _own_segments())


def test_store_distinct_content_gets_distinct_segments():
    store = SharedArrayStore()
    ref_a = store.publish(np.zeros(512))
    ref_b = store.publish(np.ones(512))
    assert ref_a.name != ref_b.name
    assert len(store) == 2
    store.unlink_all()
    assert len(store) == 0


def test_unlink_all_is_idempotent():
    store = SharedArrayStore()
    store.publish(np.zeros(512))
    store.unlink_all()
    store.unlink_all()  # second sweep must not raise
    assert len(store) == 0


# -- dumps_shared / loads_shared ------------------------------------------


def test_roundtrip_moves_large_arrays_out_of_band():
    big = np.random.default_rng(0).normal(size=4096)
    small = np.arange(3, dtype=np.float64)  # under SHARED_MIN_BYTES: inline
    payload = {"big": big, "small": small, "scalar": 7}

    data, refs = dumps_shared(payload)
    try:
        assert len(refs) == 1  # only the big array crossed the threshold
        assert big.nbytes >= SHARED_MIN_BYTES > small.nbytes
        assert len(data) < big.nbytes  # pickle shrank to metadata

        restored = loads_shared(data)
        assert np.array_equal(restored["big"], big)
        assert np.array_equal(restored["small"], small)
        assert restored["scalar"] == 7
    finally:
        close_attachments()
        for ref in refs:
            get_array_store().release(ref.digest)


def test_attached_views_are_read_only():
    big = np.zeros(4096)
    data, refs = dumps_shared({"w": big})
    try:
        restored = loads_shared(data)
        assert not restored["w"].flags.writeable
        with pytest.raises(ValueError):
            restored["w"][0] = 1.0
    finally:
        close_attachments()
        for ref in refs:
            get_array_store().release(ref.digest)


def test_missing_segment_raises_loud_error_not_hang():
    """A stale ref (segment already unlinked) must fail immediately."""
    store = get_array_store()
    data, refs = dumps_shared({"w": np.ones(4096)})
    for ref in refs:
        store.release(ref.digest)  # unlink before anyone attaches
    with pytest.raises(SharedSegmentMissingError, match=refs[0].name):
        loads_shared(data)


def test_shared_ref_is_plain_metadata():
    ref = SharedArrayRef(name="repro0_0", digest="d" * 64, dtype="<f8", shape=(4,))
    assert ref.shape == (4,)  # frozen dataclass: hashable, picklable metadata


# -- chunk_evenly ----------------------------------------------------------


def test_chunk_evenly_partitions_in_order():
    items = list(range(9))
    chunks = chunk_evenly(items, 2)
    assert chunks == [[0, 1, 2, 3, 4], [5, 6, 7, 8]]
    assert [x for chunk in chunks for x in chunk] == items


def test_chunk_evenly_sizes_differ_by_at_most_one():
    for n, parts in [(10, 3), (7, 7), (5, 8), (1, 4)]:
        chunks = chunk_evenly(list(range(n)), parts)
        sizes = [len(c) for c in chunks]
        assert sum(sizes) == n
        assert max(sizes) - min(sizes) <= 1
        assert len(chunks) == min(parts, n)


def test_chunk_evenly_layout_depends_only_on_length_and_parts():
    a = chunk_evenly(list("abcdefgh"), 3)
    b = chunk_evenly(list(range(8)), 3)
    assert [len(c) for c in a] == [len(c) for c in b]


# -- end-to-end: no leaked segments ---------------------------------------


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    series = 100 + 20 * np.sin(np.arange(700) * 2 * np.pi / 144) + rng.normal(0, 3, 700)
    forecaster = DeepARForecaster(
        36, 12, hidden_size=8, num_layers=1, num_samples=20,
        config=TrainingConfig(epochs=1, seed=0),
    ).fit(series[:550])
    return forecaster, series[550:]


def test_backtest_leaves_no_shared_memory_behind(fitted):
    """backtest(n_jobs=2) publishes its payload once, and pool shutdown
    releases every segment — nothing left in /dev/shm."""
    forecaster, test_values = fitted
    result = backtest(
        forecaster, test_values, 36, 12, (0.1, 0.5, 0.9),
        series_start_index=550, n_jobs=2,
    )
    assert result.num_windows > 1
    # While the pool is alive its payload segments are legitimately held.
    shutdown_shared_pool()
    assert len(get_array_store()) == 0
    assert _own_segments() == []


def test_pool_payload_refcount_stable_across_repeat_calls(fitted):
    """Same payload every call -> the duplicate refs are released, the
    store holds each distinct array exactly once, and a changed payload
    swaps cleanly."""
    forecaster, test_values = fitted
    store = get_array_store()

    def run():
        return backtest(
            forecaster, test_values, 36, 12, (0.1, 0.5, 0.9),
            series_start_index=550, n_jobs=2,
        )

    run()
    held = len(store)
    assert held > 0  # the model weights crossed the threshold
    run()
    run()
    assert len(store) == held  # no per-call growth
    shutdown_shared_pool()
    assert len(store) == 0
