"""Determinism contract of the parallel evaluation layer.

``backtest`` and ``grid_search`` with ``n_jobs > 1`` must return results
bit-identical to (and in the same order as) ``n_jobs=1`` — randomness is
derived from (seed, window), never from worker scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.backtest import backtest
from repro.forecast import DeepARForecaster, TrainingConfig
from repro.parallel import parallel_map
from repro.tuning.grid import grid_search

CONTEXT, HORIZON = 36, 12


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    series = 100 + 20 * np.sin(np.arange(700) * 2 * np.pi / 144) + rng.normal(0, 3, 700)
    forecaster = DeepARForecaster(
        CONTEXT, HORIZON, hidden_size=8, num_layers=1, num_samples=20,
        config=TrainingConfig(epochs=1, seed=0),
    ).fit(series[:550])
    return forecaster, series[550:]


def _run(forecaster, test_values, n_jobs):
    return backtest(
        forecaster, test_values, CONTEXT, HORIZON, (0.1, 0.5, 0.9),
        series_start_index=550, n_jobs=n_jobs,
    )


def test_backtest_parallel_bit_identical_to_serial(fitted):
    forecaster, test_values = fitted
    serial = _run(forecaster, test_values, n_jobs=1)
    parallel = _run(forecaster, test_values, n_jobs=4)
    assert serial.points == parallel.points
    assert len(serial.forecasts) == len(parallel.forecasts) > 1
    for a, b in zip(serial.forecasts, parallel.forecasts):
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.levels, b.levels)
    assert np.array_equal(serial.merged_actual, parallel.merged_actual)
    assert np.array_equal(serial.merged_level(0.5), parallel.merged_level(0.5))


def test_backtest_deterministic_across_repeat_runs(fitted):
    forecaster, test_values = fitted
    first = _run(forecaster, test_values, n_jobs=1)
    second = _run(forecaster, test_values, n_jobs=1)
    for a, b in zip(first.forecasts, second.forecasts):
        assert np.array_equal(a.values, b.values)


def _objective(params):
    return (params["a"] - 2.0) ** 2 + params["b"]


def test_grid_search_parallel_matches_serial():
    space = {"a": [0.0, 1.0, 2.0, 3.0], "b": [0.5, 0.0]}
    best_serial, all_serial = grid_search(_objective, space)
    best_parallel, all_parallel = grid_search(_objective, space, n_jobs=2)
    assert all_serial == all_parallel  # same values, same order
    assert best_serial == best_parallel
    assert best_parallel.params == {"a": 2.0, "b": 0.0}


def _square(context, item):
    return context["scale"] * item * item


def test_parallel_map_orders_results():
    items = list(range(8))
    serial = parallel_map(_square, items, {"scale": 3})
    fanned = parallel_map(_square, items, {"scale": 3}, n_jobs=3)
    assert serial == fanned == [3 * i * i for i in items]


def test_parallel_map_rejects_bad_n_jobs():
    with pytest.raises(ValueError):
        parallel_map(_square, [1], {"scale": 1}, n_jobs=0)


# -- persistent pool ------------------------------------------------------


def _pid_task(context, item):
    import os

    return os.getpid()


def _mutate_context(context, item):
    context["log"].append(item)
    return len(context["log"])


def _fail_on_three(context, item):
    if item == 3:
        raise ValueError("item three is cursed")
    return item * 10


def test_parallel_map_reuses_worker_processes():
    """Repeated calls run on the same workers — no per-call pool spawn."""
    from repro.parallel import get_shared_pool

    first = set(parallel_map(_pid_task, range(6), None, n_jobs=2, serial_threshold=0))
    pids = set(get_shared_pool(2).worker_pids())
    second = set(parallel_map(_pid_task, range(6), None, n_jobs=2, serial_threshold=0))
    assert first and first == second
    assert first <= pids


def test_parallel_map_pool_reuse_amortises_startup():
    """After the first call, a pooled call costs ~milliseconds, not the
    seconds a fresh spawn-pool costs: the 14x-slower-than-serial backtest
    regression.  The bound is deliberately loose for CI noise."""
    import time

    items = list(range(8))
    parallel_map(_square, items, {"scale": 2}, n_jobs=2, serial_threshold=0)  # warm
    start = time.perf_counter()
    for _ in range(3):
        parallel_map(_square, items, {"scale": 2}, n_jobs=2, serial_threshold=0)
    per_call = (time.perf_counter() - start) / 3
    assert per_call < 1.0, f"pooled call took {per_call:.2f}s — pool not reused?"


def test_parallel_map_auto_serial_threshold():
    """At or below the threshold no workers are involved at all."""
    from repro import parallel

    pool_before = parallel._SHARED_POOL
    pids = parallel_map(_pid_task, [1, 2], None, n_jobs=4, serial_threshold=2)
    import os

    assert pids == [os.getpid()] * 2
    assert parallel._SHARED_POOL is pool_before  # untouched by the call


def test_parallel_map_context_isolated_between_calls():
    """Task-side context mutations never leak into the next call."""
    context = {"log": []}
    first = parallel_map(_mutate_context, range(4), context, n_jobs=2, serial_threshold=0)
    second = parallel_map(_mutate_context, range(4), context, n_jobs=2, serial_threshold=0)
    assert first == second  # each call starts from the pristine payload
    assert context["log"] == []  # parent copy untouched


def test_parallel_map_worker_error_propagates_and_pool_survives():
    with pytest.raises(ValueError, match="cursed"):
        parallel_map(_fail_on_three, range(6), None, n_jobs=2, serial_threshold=0)
    # The failed call drained cleanly; the pool keeps working.
    assert parallel_map(_square, [1, 2, 3], {"scale": 1}, n_jobs=2, serial_threshold=0) == [1, 4, 9]


def test_backtest_repeated_parallel_calls_stay_deterministic(fitted):
    forecaster, test_values = fitted
    runs = [_run(forecaster, test_values, n_jobs=2) for _ in range(3)]
    for other in runs[1:]:
        for a, b in zip(runs[0].forecasts, other.forecasts):
            assert np.array_equal(a.values, b.values)


# -- tracing across the pool ----------------------------------------------


def _traced_run(forecaster, test_values, n_jobs):
    from repro.obs import (
        InMemorySink,
        MetricsRegistry,
        TraceCollector,
        using_registry,
    )

    registry = MetricsRegistry(sinks=[InMemorySink()])
    collector = TraceCollector()
    registry.set_tracer(collector)
    collector.begin(0)
    with using_registry(registry):
        result = _run(forecaster, test_values, n_jobs=n_jobs)
    return result, collector.end()


def test_backtest_results_identical_with_tracing_attached(fitted):
    """Tracing observes, never perturbs: n_jobs=1 == n_jobs=2 bit-for-bit."""
    forecaster, test_values = fitted
    serial, serial_trace = _traced_run(forecaster, test_values, n_jobs=1)
    fanned, fanned_trace = _traced_run(forecaster, test_values, n_jobs=2)
    assert serial.points == fanned.points
    for a, b in zip(serial.forecasts, fanned.forecasts):
        assert np.array_equal(a.values, b.values)
    # Same span names either way: re-rooting makes a worker's "predict"
    # land where the serial run records it.
    names = lambda t: sorted(s["name"] for s in t["spans"])  # noqa: E731
    assert names(serial_trace) == names(fanned_trace)


def test_worker_spans_rerooted_into_parent_trace(fitted):
    from repro.parallel import chunk_evenly

    forecaster, test_values = fitted
    result, trace = _traced_run(forecaster, test_values, n_jobs=2)
    assert trace["status"] == "ok"
    by_name = {}
    for span in trace["spans"]:
        by_name.setdefault(span["name"], []).append(span)
    (backtest_span,) = by_name["backtest"]
    predicts = by_name["backtest/predict"]
    assert len(predicts) == len(result.points)
    worker_spans = [s for s in predicts if s["span_id"].startswith("w")]
    assert worker_spans  # at least some windows really crossed the pool
    for span in worker_spans:
        assert span["parent_id"] == backtest_span["span_id"]
        assert span["status"] == "ok"
    # Deterministic ids keyed by (chunk, position-in-chunk): windows are
    # batched one contiguous chunk per worker, and each chunk's predict
    # spans count up from 1 — nothing depends on worker scheduling.
    expected = {
        f"w{chunk_index}.{n}"
        for chunk_index, chunk in enumerate(chunk_evenly(result.points, 2))
        for n in range(1, len(chunk) + 1)
    }
    assert {s["span_id"] for s in worker_spans} == expected
