"""Tests for the rolling-origin backtesting API."""

import numpy as np
import pytest

from repro.evaluation import backtest
from repro.forecast import SeasonalNaiveForecaster

SEASON = 48
LEVELS = (0.1, 0.5, 0.9)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(3)
    t = np.arange(SEASON * 20)
    series = 500.0 + 200.0 * np.sin(2 * np.pi * t / SEASON) + rng.normal(0, 10, len(t))
    train, test = series[: -SEASON * 6], series[-SEASON * 6 :]
    forecaster = SeasonalNaiveForecaster(horizon=SEASON, season=SEASON).fit(train)
    return forecaster, train, test


class TestBacktest:
    def test_window_count(self, fitted):
        forecaster, train, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        # 6 seasons of test data, context + horizon = 2 seasons -> 5 windows
        assert result.num_windows == 5
        assert len(result.merged_actual) == 5 * SEASON

    def test_merged_shapes_consistent(self, fitted):
        forecaster, _, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        for tau in LEVELS:
            assert result.merged_level(tau).shape == result.merged_actual.shape
        assert result.merged_point().shape == result.merged_actual.shape

    def test_coverage_ordering(self, fitted):
        forecaster, _, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        assert result.coverage(0.9) > result.coverage(0.1)

    def test_calibration_near_nominal(self, fitted):
        """Seasonal naive's residual quantiles are honestly calibrated."""
        forecaster, _, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        assert result.coverage(0.9) == pytest.approx(0.9, abs=0.1)
        assert result.coverage(0.5) == pytest.approx(0.5, abs=0.15)

    def test_metrics_positive_and_finite(self, fitted):
        forecaster, _, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        assert 0 < result.mean_wql() < 1
        assert 0 < result.wql(0.9) < 1
        assert np.isfinite(result.mse())

    def test_report_round_trip(self, fitted):
        forecaster, _, test = fitted
        result = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        report = result.report("naive", "synthetic")
        assert report.model == "naive"
        assert report.mean_wql == pytest.approx(result.mean_wql())

    def test_stride_controls_density(self, fitted):
        forecaster, _, test = fitted
        dense = backtest(forecaster, test, SEASON, SEASON, LEVELS, stride=SEASON // 2)
        sparse = backtest(forecaster, test, SEASON, SEASON, LEVELS)
        assert dense.num_windows > sparse.num_windows

    def test_monitor_streams_every_window(self, fitted):
        from repro.obs import ModelHealthMonitor

        forecaster, _, test = fitted
        monitor = ModelHealthMonitor(window=SEASON, detectors=[])
        result = backtest(
            forecaster, test, SEASON, SEASON, LEVELS,
            series_start_index=1000, monitor=monitor,
        )
        assert monitor.steps_observed == result.num_windows * SEASON
        assert len(monitor.windows) == result.num_windows
        # Absolute indexing carries through from series_start_index.
        assert monitor.windows[0].start_index == 1000 + SEASON
        # The monitor's streaming coverage agrees with the offline table
        # (equal-size windows, so the mean of window coverages is exact).
        assert float(monitor.coverage_series(0.9).mean()) == pytest.approx(
            result.coverage(0.9), abs=1e-9
        )

    def test_too_short_series_raises(self, fitted):
        forecaster, _, test = fitted
        with pytest.raises(ValueError):
            backtest(forecaster, test[: SEASON + 1], SEASON, SEASON, LEVELS)
