"""Control-plane contract tests: real HTTP requests on an ephemeral port."""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes
from repro.service import GeneratorSource, ServiceRuntime


class QuantilePlanner:
    name = "quantile-double"

    def __init__(self, horizon, threshold):
        self.horizon = horizon
        self.threshold = threshold

    def plan(self, context, start_index=0):
        base = float(np.mean(context))
        levels = np.array([0.1, 0.5, 0.9])
        values = np.vstack([
            np.full(self.horizon, base * f) for f in (0.8, 1.0, 1.2)
        ])
        return ScalingPlan(
            nodes=required_nodes(values[-1], self.threshold),
            threshold=self.threshold,
            strategy=self.name,
            metadata={"forecast_levels": levels, "forecast_values": values},
        )


def request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(
            method, path,
            body=body if isinstance(body, (str, bytes, type(None)))
            else json.dumps(body),
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def start_service(service):
    """Run a ServiceRuntime in a daemon thread; wait for its port."""
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while service.port is None:
        if time.monotonic() > deadline:
            raise TimeoutError("service never bound its port")
        time.sleep(0.01)
    return thread


def wait_for_ticks(port, count, timeout=10):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, health = request(port, "GET", "/health")
        if status == 200 and health["ticks_processed"] >= count:
            return health
        time.sleep(0.02)
    raise TimeoutError(f"service never processed {count} ticks")


SERIES = list(np.abs(np.random.default_rng(5).normal(300, 60, size=30)))


@pytest.fixture(scope="module")
def warm(tmp_path_factory):
    """A service that has drained a full trace (plans committed)."""
    runtime = AutoscalingRuntime(
        planner=QuantilePlanner(4, 60.0), context_length=6, horizon=4,
        threshold=60.0,
    )
    service = ServiceRuntime(
        runtime, GeneratorSource(SERIES),
        checkpoint_dir=tmp_path_factory.mktemp("ckpt") / "snap",
        linger=60.0,
    )
    thread = start_service(service)
    wait_for_ticks(service.port, len(SERIES))
    yield service
    service.request_stop()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def cold():
    """A service with an empty source: no history, no plan."""
    runtime = AutoscalingRuntime(
        planner=QuantilePlanner(4, 60.0), context_length=6, horizon=4,
        threshold=60.0,
    )
    service = ServiceRuntime(runtime, GeneratorSource([]), linger=60.0)
    thread = start_service(service)
    yield service
    service.request_stop()
    thread.join(timeout=10)


class TestHealth:
    def test_reports_loop_state(self, warm):
        status, health = request(warm.port, "GET", "/health")
        assert status == 200
        assert health["status"] in ("serving", "draining")
        assert health["ticks_processed"] == len(SERIES)
        assert health["tick"] == len(SERIES)
        assert health["decisions"] == len(warm.runtime.decisions)
        assert health["last_target_nodes"] >= 1
        assert health["planner_errors"] == 0

    def test_monitor_is_null_when_not_attached(self, warm):
        _, health = request(warm.port, "GET", "/health")
        assert health["monitor"] is None


class TestMetrics:
    def test_snapshot_includes_service_counters(self, warm):
        status, metrics = request(warm.port, "GET", "/metrics")
        assert status == 200
        assert {"counters", "gauges", "histograms", "spans"} <= metrics.keys()
        # The ambient registry is process-wide, so assert a floor, not
        # an exact count.
        assert metrics["counters"].get("service.ticks", 0) >= len(SERIES)


class TestForecast:
    def test_committed_plan_with_quantile_surface(self, warm):
        status, forecast = request(warm.port, "GET", "/forecast")
        assert status == 200
        assert forecast["strategy"] == "quantile-double"
        assert forecast["levels"] == [0.1, 0.5, 0.9]
        assert len(forecast["values"]) == 3
        assert len(forecast["values"][0]) == forecast["horizon"] == 4
        assert all(n >= 1 for n in forecast["nodes"])

    def test_cold_start_is_409(self, cold):
        status, payload = request(cold.port, "GET", "/forecast")
        assert status == 409
        assert "no committed plan" in payload["error"]


class TestDecisions:
    def test_returns_newest_decisions(self, warm):
        status, payload = request(warm.port, "GET", "/decisions?limit=3")
        assert status == 200
        assert payload["total"] == len(warm.runtime.decisions)
        assert len(payload["decisions"]) == 3
        ticks = [d["tick"] for d in payload["decisions"]]
        assert ticks == sorted(ticks)
        for decision in payload["decisions"]:
            assert {"tick", "source", "strategy", "nodes"} <= decision.keys()

    @pytest.mark.parametrize("query", ["?limit=zebra", "?limit=0"])
    def test_bad_limit_is_400(self, warm, query):
        status, payload = request(warm.port, "GET", f"/decisions{query}")
        assert status == 400
        assert "limit" in payload["error"]


class TestPlan:
    def test_forces_an_immediate_replan(self, warm):
        before = len(warm.runtime.decisions)
        status, decision = request(warm.port, "POST", "/plan")
        assert status == 200
        assert decision["source"] == "predictive"
        assert decision["tick"] == warm.runtime.tick
        assert len(warm.runtime.decisions) == before + 1

    def test_without_history_is_409(self, cold):
        status, payload = request(cold.port, "POST", "/plan")
        assert status == 409
        assert "context window" in payload["error"]


class TestCheckpoint:
    def test_writes_a_restorable_checkpoint(self, warm):
        status, payload = request(warm.port, "POST", "/checkpoint")
        assert status == 200
        from repro.service import load_checkpoint

        state = load_checkpoint(payload["path"])
        assert state["runtime"]["tick"] == payload["tick"]
        assert state["source_position"] == len(SERIES)

    def test_without_checkpoint_dir_is_409(self, cold):
        status, payload = request(cold.port, "POST", "/checkpoint")
        assert status == 409
        assert "checkpoint" in payload["error"]

    def test_malformed_json_body_is_400(self, warm):
        status, payload = request(warm.port, "POST", "/checkpoint",
                                  body="{not json")
        assert status == 400
        assert "JSON" in payload["error"]


class TestRouting:
    def test_unknown_path_is_404(self, warm):
        status, payload = request(warm.port, "GET", "/nope")
        assert status == 404
        assert "no such endpoint" in payload["error"]

    def test_wrong_method_is_405(self, warm):
        assert request(warm.port, "POST", "/health")[0] == 405
        assert request(warm.port, "GET", "/plan")[0] == 405

    def test_trailing_slash_is_normalised(self, warm):
        assert request(warm.port, "GET", "/health/")[0] == 200
