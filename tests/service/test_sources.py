"""Tests for telemetry tick sources and the wire format."""

import asyncio
import io

import pytest

from repro.service import (
    FileTailSource,
    GeneratorSource,
    StdinJsonlSource,
    TelemetrySource,
    parse_tick_line,
)


def drain(source, limit=None):
    """Collect a source's ticks synchronously (bounded by ``limit``)."""

    async def _collect():
        out = []
        async for value in source.ticks():
            out.append(value)
            if limit is not None and len(out) >= limit:
                break
        return out

    return asyncio.run(_collect())


class TestParseTickLine:
    def test_bare_number(self):
        assert parse_tick_line("123.5\n") == 123.5

    def test_json_value_record(self):
        assert parse_tick_line('{"value": 42, "host": "db-1"}') == 42.0

    def test_blank_and_comment_lines_are_skipped(self):
        assert parse_tick_line("") is None
        assert parse_tick_line("   \n") is None
        assert parse_tick_line("# header\n") is None

    @pytest.mark.parametrize(
        "line", ["not-a-number", '{"broken": }', '{"no_value": 1}']
    )
    def test_malformed_lines_raise(self, line):
        with pytest.raises(ValueError):
            parse_tick_line(line)


class TestGeneratorSource:
    def test_yields_all_values_and_counts_position(self):
        source = GeneratorSource([1.0, 2.0, 3.0])
        assert drain(source) == [1.0, 2.0, 3.0]
        assert source.position == 3

    def test_seek_skips_processed_ticks(self):
        source = GeneratorSource([1.0, 2.0, 3.0, 4.0])
        source.seek(2)
        assert drain(source) == [3.0, 4.0]
        assert source.position == 4

    def test_seek_out_of_bounds_raises(self):
        source = GeneratorSource([1.0])
        with pytest.raises(ValueError):
            source.seek(5)

    def test_satisfies_the_source_protocol(self):
        assert isinstance(GeneratorSource([]), TelemetrySource)


class TestFileTailSource:
    def test_reads_mixed_format_file(self, tmp_path):
        path = tmp_path / "ticks.jsonl"
        path.write_text('# comment\n100\n\n{"value": 200.5}\n300\n')
        source = FileTailSource(path)
        assert drain(source) == [100.0, 200.5, 300.0]
        assert source.position == 3

    def test_seek_counts_ticks_not_lines(self, tmp_path):
        path = tmp_path / "ticks.jsonl"
        path.write_text("# comment\n100\n200\n300\n")
        source = FileTailSource(path)
        source.seek(2)
        assert drain(source) == [300.0]
        assert source.position == 3

    def test_satisfies_the_source_protocol(self, tmp_path):
        path = tmp_path / "t"
        path.write_text("")
        assert isinstance(FileTailSource(path), TelemetrySource)


class TestStdinJsonlSource:
    def test_reads_from_stream(self):
        source = StdinJsonlSource(io.StringIO("10\n20\n# skip\n30\n"))
        assert drain(source) == [10.0, 20.0, 30.0]
        assert source.position == 3

    def test_seek_consumes_and_discards(self):
        source = StdinJsonlSource(io.StringIO("10\n20\n30\n"))
        source.seek(1)
        assert drain(source) == [20.0, 30.0]
