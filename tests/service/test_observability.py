"""Observability surface of the daemon: /traces, /series, Prometheus, top."""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes
from repro.obs import (
    AlertEngine,
    MetricsRegistry,
    ModelHealthMonitor,
    SLOTracker,
    TraceCollector,
    parse_exposition,
    using_registry,
)
from repro.service import GeneratorSource, ServiceRuntime, render_dashboard
from repro.service.dashboard import sparkline


class QuantilePlanner:
    name = "quantile-double"

    def __init__(self, horizon, threshold):
        self.horizon = horizon
        self.threshold = threshold

    def plan(self, context, start_index=0):
        base = float(np.mean(context))
        levels = np.array([0.1, 0.5, 0.9])
        values = np.vstack([
            np.full(self.horizon, base * f) for f in (0.8, 1.0, 1.2)
        ])
        return ScalingPlan(
            nodes=required_nodes(values[-1], self.threshold),
            threshold=self.threshold,
            strategy=self.name,
            metadata={"forecast_levels": levels, "forecast_values": values},
        )


def request(port, method, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return status_payload(response)
    finally:
        conn.close()


def status_payload(response):
    return response.status, json.loads(response.read())


def request_raw(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return (
            response.status,
            response.getheader("Content-Type", ""),
            response.read().decode("utf-8"),
        )
    finally:
        conn.close()


SERIES = list(np.abs(np.random.default_rng(11).normal(300, 60, size=30)))


@pytest.fixture(scope="module")
def traced():
    """A drained service with tracer, monitor, and SLOs attached."""
    engine = AlertEngine()
    slos = SLOTracker(
        ["qos_violation_rate < 0.05 over 24", "plan_latency_p99 < 10s"],
        engine=engine,
    )
    runtime = AutoscalingRuntime(
        planner=QuantilePlanner(4, 60.0), context_length=6, horizon=4,
        threshold=60.0,
    )
    runtime.monitor = ModelHealthMonitor(window=4, alerts=engine, slos=slos)
    service = ServiceRuntime(
        runtime, GeneratorSource(SERIES),
        tracer=TraceCollector(max_traces=16),
        linger=60.0,
    )
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 10
    while service.port is None:
        if time.monotonic() > deadline:
            raise TimeoutError("service never bound its port")
        time.sleep(0.01)
    deadline = time.monotonic() + 10
    while service.ticks_processed < len(SERIES):
        if time.monotonic() > deadline:
            raise TimeoutError("service never drained the series")
        time.sleep(0.02)
    yield service
    service.request_stop()
    thread.join(timeout=10)


class TestHealthObservability:
    def test_health_carries_slo_status(self, traced):
        status, health = request(traced.port, "GET", "/health")
        assert status == 200
        objectives = {entry["objective"] for entry in health["slo"]}
        assert "qos_violation_rate < 0.05 over 24" in objectives
        assert "plan_latency_p99 < 10s" in objectives
        for entry in health["slo"]:
            assert "healthy" in entry

    def test_health_carries_phase_latencies(self, traced):
        _, health = request(traced.port, "GET", "/health")
        assert set(health["phases"]) == {"plan", "actuate", "observe"}
        assert all(v >= 0 for v in health["phases"].values())


class TestTraces:
    def test_serves_recent_traces(self, traced):
        status, payload = request(traced.port, "GET", "/traces?limit=3")
        assert status == 200
        assert payload["tracing"] is True
        assert payload["total"] >= 3
        assert len(payload["traces"]) == 3
        trace = payload["traces"][-1]
        assert {"trace_id", "status", "duration_s", "spans"} <= trace.keys()
        names = {span["name"] for span in trace["spans"]}
        assert "runtime.step" in names
        assert "runtime.step/observe" in names

    def test_span_tree_is_well_formed(self, traced):
        _, payload = request(traced.port, "GET", "/traces?limit=1")
        trace = payload["traces"][0]
        ids = {span["span_id"] for span in trace["spans"]}
        roots = [s for s in trace["spans"] if s["parent_id"] not in ids]
        assert len(roots) == 1
        assert roots[0]["name"] == "runtime.step"

    @pytest.mark.parametrize("query", ["?limit=zebra", "?limit=0", "?limit=-3"])
    def test_bad_limit_is_400(self, traced, query):
        status, payload = request(traced.port, "GET", f"/traces{query}")
        assert status == 400
        assert "limit" in payload["error"]

    def test_untraced_daemon_reports_tracing_false(self):
        runtime = AutoscalingRuntime(
            planner=QuantilePlanner(4, 60.0), context_length=6, horizon=4,
            threshold=60.0,
        )
        service = ServiceRuntime(runtime, GeneratorSource([]))
        # Isolate from any tracer another fixture left on the ambient
        # registry: an untraced daemon must say so.
        with using_registry(MetricsRegistry()):
            payload = service._handle_traces({}, None)
        assert payload == {"total": 0, "tracing": False, "traces": []}


class TestSeries:
    def test_serves_workload_and_capacity_points(self, traced):
        status, payload = request(traced.port, "GET", "/series?limit=10")
        assert status == 200
        assert payload["total"] == len(SERIES)
        assert payload["threshold"] == 60.0
        assert len(payload["points"]) == 10
        point = payload["points"][-1]
        assert {"tick", "workload", "nodes"} <= point.keys()
        assert point["tick"] == len(SERIES) - 1
        assert point["workload"] == pytest.approx(SERIES[-1])

    @pytest.mark.parametrize("query", ["?limit=zebra", "?limit=0"])
    def test_bad_limit_is_400(self, traced, query):
        status, payload = request(traced.port, "GET", f"/series{query}")
        assert status == 400
        assert "limit" in payload["error"]


class TestPrometheusEndpoint:
    def test_content_negotiation(self, traced):
        status, ctype, text = request_raw(
            traced.port, "/metrics?format=prometheus"
        )
        assert status == 200
        assert ctype.startswith("text/plain")
        assert "version=0.0.4" in ctype
        families = parse_exposition(text)
        assert any(n.startswith("repro_service_ticks") for n in families)
        assert any(n == "repro_span_duration_seconds" for n in families)

    def test_json_remains_the_default(self, traced):
        status, metrics = request(traced.port, "GET", "/metrics")
        assert status == 200
        assert "counters" in metrics

    def test_unknown_format_is_400(self, traced):
        status, payload = request(traced.port, "GET", "/metrics?format=xml")
        assert status == 400
        assert "format" in payload["error"]


class TestDashboard:
    def fetch_all(self, traced):
        return (
            request(traced.port, "GET", "/health")[1],
            request(traced.port, "GET", "/series?limit=20")[1],
            request(traced.port, "GET", "/decisions?limit=5")[1],
        )

    def test_renders_all_sections(self, traced):
        health, series, decisions = self.fetch_all(traced)
        frame = render_dashboard(health, series, decisions, color=False)
        assert "repro-autoscale top" in frame
        assert "SLO error budgets" in frame
        assert "recent decisions" in frame
        assert "workload vs capacity" in frame
        assert "\x1b[" not in frame  # color=False means no ANSI codes

    def test_color_frames_use_ansi(self, traced):
        health, series, decisions = self.fetch_all(traced)
        frame = render_dashboard(health, series, decisions, color=True)
        assert "\x1b[" in frame

    def test_renders_with_minimal_payloads(self):
        frame = render_dashboard({"status": "serving"}, color=False)
        assert "status=serving" in frame

    def test_sparkline_shape_and_scale(self):
        line = sparkline([0.0, 50.0, 100.0], width=3)
        assert len(line) == 3
        assert line[-1] == "█"
        assert sparkline([None, None], width=4) == "    "
        assert len(sparkline(list(range(100)), width=10)) == 10
