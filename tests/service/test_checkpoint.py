"""Checkpoint/restore: kill the loop, resume it, demand bit-identity."""

import json

import numpy as np
import pytest

from repro.core import AutoscalingRuntime, ScalingPlan
from repro.core.plan import required_nodes
from repro.faults import FaultSchedule, FlakyPlanner, corrupt_series
from repro.obs import AlertEngine, ModelHealthMonitor, default_rules
from repro.service import load_checkpoint, restore_from_checkpoint, save_checkpoint

SERIES = np.abs(np.random.default_rng(11).normal(400, 120, size=60))
START_TICK = 200


class NoisyForecaster:
    """Stand-in stochastic forecaster: only the sampler rng matters."""

    def __init__(self, seed=0):
        self._sample_rng = np.random.default_rng(seed)


class StochasticPlanner:
    """Planner whose decisions consume sampler randomness (test double).

    Each plan draws from the forecaster's sampler rng, so two runs only
    produce identical decision streams if the rng state round-trips
    bit-exactly through the checkpoint.
    """

    name = "stochastic"

    def __init__(self, horizon, threshold, seed=0):
        self.forecaster = NoisyForecaster(seed)
        self.horizon = horizon
        self.threshold = threshold

    def plan(self, context, start_index=0):
        base = float(np.mean(context))
        noise = self.forecaster._sample_rng.normal(0, 0.1 * base, self.horizon)
        levels = np.array([0.1, 0.5, 0.9])
        values = np.vstack([
            np.maximum(base * f + noise, 0.0) for f in (0.8, 1.0, 1.2)
        ])
        return ScalingPlan(
            nodes=required_nodes(values[-1], self.threshold),
            threshold=self.threshold,
            strategy=self.name,
            metadata={"forecast_levels": levels, "forecast_values": values},
        )


def make_loop(*, faults=None, monitor=True, seed=0, context=8, horizon=6):
    planner = StochasticPlanner(horizon, 60.0, seed=seed)
    if faults is not None:
        planner = FlakyPlanner(planner, faults, time_offset=START_TICK)
    runtime = AutoscalingRuntime(
        planner=planner,
        context_length=context,
        horizon=horizon,
        threshold=60.0,
        start_tick=START_TICK,
        invalid_policy="impute",
        monitor=(
            ModelHealthMonitor(
                window=10, alerts=AlertEngine(default_rules(nominal_level=0.9))
            )
            if monitor
            else None
        ),
    )
    return runtime, planner


class TestSaveLoad:
    def test_round_trips_the_state_file(self, tmp_path):
        runtime, planner = make_loop()
        runtime.run(SERIES[:20])
        path = save_checkpoint(
            tmp_path / "ckpt", runtime=runtime,
            config={"model": "naive"}, source_position=20,
        )
        state = load_checkpoint(path)
        assert state["config"] == {"model": "naive"}
        assert state["source_position"] == 20
        assert state["runtime"]["tick"] == START_TICK + 20
        assert state["monitor"] is not None
        assert state["sampler"] is not None
        # The checkpoint is plain JSON on disk, not pickles.
        raw = json.loads((path / "state.json").read_text())
        assert raw["version"] == 1

    def test_missing_checkpoint_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")

    def test_corrupt_state_file_raises_value_error(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "state.json").write_text("{truncated")
        with pytest.raises(ValueError, match="corrupt"):
            load_checkpoint(ckpt)

    def test_version_mismatch_raises(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        (ckpt / "state.json").write_text('{"version": 99}')
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(ckpt)


class TestKillRestoreBitIdentity:
    KILL_AT = 25

    def _uninterrupted(self, faults, observed):
        runtime, _ = make_loop(faults=faults)
        allocations = runtime.run(observed)
        return runtime, allocations

    def test_restored_run_matches_uninterrupted(self, tmp_path):
        faults = FaultSchedule.parse("nan@5,planner_error@14,spike@30:4,nan@40")
        observed, _ = corrupt_series(SERIES, faults)

        full, full_alloc = self._uninterrupted(faults, observed)

        # "Crash" after KILL_AT ticks: checkpoint, throw everything away.
        victim, victim_planner = make_loop(faults=faults)
        victim.run(observed[: self.KILL_AT])
        save_checkpoint(
            tmp_path / "ckpt", runtime=victim, planner=victim_planner,
            source_position=self.KILL_AT,
        )
        del victim, victim_planner

        # Fresh objects, as a new process would build them.
        restored, planner = make_loop(faults=faults)
        position = restore_from_checkpoint(
            tmp_path / "ckpt", runtime=restored, planner=planner
        )
        assert position == self.KILL_AT
        tail_alloc = restored.run(observed[position:])

        np.testing.assert_array_equal(tail_alloc, full_alloc[position:])
        assert [d.to_state() for d in restored.decisions] == [
            d.to_state() for d in full.decisions
        ]
        assert restored.monitor.state_dict() == full.monitor.state_dict()
        # Counters survived the crash too.
        assert restored.invalid_observations == full.invalid_observations
        assert restored.planner_errors == full.planner_errors

    def test_restore_without_sampler_state_still_diverges(self, tmp_path):
        """Control experiment: the sampler state is load-bearing."""
        full, full_alloc = self._uninterrupted(None, SERIES)

        victim, _ = make_loop()
        victim.run(SERIES[: self.KILL_AT])
        save_checkpoint(tmp_path / "ckpt", runtime=victim,
                        source_position=self.KILL_AT)

        restored, planner = make_loop()
        state = load_checkpoint(tmp_path / "ckpt")
        state["sampler"] = None  # simulate a lossy checkpoint
        restore_from_checkpoint(state, runtime=restored, planner=planner)
        tail_alloc = restored.run(SERIES[self.KILL_AT :])
        assert not np.array_equal(tail_alloc, full_alloc[self.KILL_AT :])


class TestRestoreMismatches:
    def test_monitor_state_needs_a_monitor(self, tmp_path):
        runtime, _ = make_loop(monitor=True)
        runtime.run(SERIES[:10])
        save_checkpoint(tmp_path / "ckpt", runtime=runtime)
        bare, planner = make_loop(monitor=False)
        with pytest.raises(ValueError, match="monitor"):
            restore_from_checkpoint(tmp_path / "ckpt", runtime=bare,
                                    planner=planner)

    def test_sampler_state_needs_a_sampler(self, tmp_path):
        runtime, planner = make_loop(monitor=False)
        runtime.run(SERIES[:10])
        save_checkpoint(tmp_path / "ckpt", runtime=runtime, planner=planner)

        class DeterministicPlanner(StochasticPlanner):
            def __init__(self, horizon, threshold):
                super().__init__(horizon, threshold)
                self.forecaster = object()  # no _sample_rng

        bare = AutoscalingRuntime(
            planner=DeterministicPlanner(6, 60.0), context_length=8,
            horizon=6, threshold=60.0, start_tick=START_TICK,
        )
        with pytest.raises(ValueError, match="sampler"):
            restore_from_checkpoint(tmp_path / "ckpt", runtime=bare)


class TestModelWeights:
    def test_neural_weights_round_trip_through_the_checkpoint(self, tmp_path):
        from repro.core import FixedQuantilePolicy, RobustPredictiveAutoscaler
        from repro.forecast import MLPForecaster, TrainingConfig

        rng = np.random.default_rng(3)
        train = np.abs(rng.normal(300, 60, size=120))
        config = TrainingConfig(epochs=2, window_stride=4, seed=0)
        forecaster = MLPForecaster(12, 4, config=config)
        forecaster.fit(train)
        planner = RobustPredictiveAutoscaler(
            forecaster, 60.0, FixedQuantilePolicy(0.9)
        )
        runtime = AutoscalingRuntime(
            planner=planner, context_length=12, horizon=4, threshold=60.0,
        )
        runtime.run(train[:30])
        path = save_checkpoint(tmp_path / "ckpt", runtime=runtime,
                               source_position=30)
        assert (path / "model.npz").exists()
        expected = forecaster.predict(train[-12:]).values

        fresh = MLPForecaster(12, 4, config=config)
        fresh_planner = RobustPredictiveAutoscaler(
            fresh, 60.0, FixedQuantilePolicy(0.9)
        )
        fresh_runtime = AutoscalingRuntime(
            planner=fresh_planner, context_length=12, horizon=4,
            threshold=60.0,
        )
        restore_from_checkpoint(path, runtime=fresh_runtime,
                                planner=fresh_planner)
        np.testing.assert_array_equal(
            fresh.predict(train[-12:]).values, expected
        )
