"""Tests for the output distributions."""

import numpy as np
import pytest
from scipy import stats

from repro.distributions import Empirical, Gaussian, StudentT


class TestGaussian:
    def test_mean_std(self):
        d = Gaussian(np.array([1.0, 2.0]), np.array([0.5, 1.5]))
        np.testing.assert_array_equal(d.mean(), [1.0, 2.0])
        np.testing.assert_array_equal(d.std(), [0.5, 1.5])

    def test_quantile_matches_scipy(self):
        d = Gaussian(np.array([3.0]), np.array([2.0]))
        assert d.quantile(0.9)[0] == pytest.approx(stats.norm.ppf(0.9, 3.0, 2.0))

    def test_median_is_mean(self):
        d = Gaussian(np.array([5.0]), np.array([1.0]))
        assert d.quantile(0.5)[0] == pytest.approx(5.0)

    def test_sampling_moments(self):
        d = Gaussian(np.array([2.0]), np.array([3.0]))
        samples = d.sample(20000, np.random.default_rng(0))
        assert samples.shape == (20000, 1)
        assert samples.mean() == pytest.approx(2.0, abs=0.1)
        assert samples.std() == pytest.approx(3.0, abs=0.1)

    def test_log_prob(self):
        d = Gaussian(np.array([0.0]), np.array([1.0]))
        assert d.log_prob(np.array([0.0]))[0] == pytest.approx(stats.norm.logpdf(0.0))

    def test_rejects_nonpositive_sigma(self):
        with pytest.raises(ValueError):
            Gaussian(np.array([0.0]), np.array([0.0]))

    def test_quantiles_stacks_levels(self):
        d = Gaussian(np.zeros(3), np.ones(3))
        out = d.quantiles([0.1, 0.5, 0.9])
        assert out.shape == (3, 3)
        assert np.all(np.diff(out, axis=0) > 0)


class TestStudentT:
    def test_quantile_matches_scipy(self):
        d = StudentT(np.array([1.0]), np.array([2.0]), 5.0)
        assert d.quantile(0.8)[0] == pytest.approx(stats.t.ppf(0.8, 5, 1.0, 2.0))

    def test_heavier_tails_than_gaussian(self):
        t_dist = StudentT(np.array([0.0]), np.array([1.0]), 3.0)
        g_dist = Gaussian(np.array([0.0]), np.array([1.0]))
        assert t_dist.quantile(0.99)[0] > g_dist.quantile(0.99)[0]

    def test_std_finite_df(self):
        d = StudentT(np.array([0.0]), np.array([2.0]), 4.0)
        assert d.std()[0] == pytest.approx(2.0 * np.sqrt(4.0 / 2.0))

    def test_std_fallback_low_df(self):
        d = StudentT(np.array([0.0]), np.array([2.0]), 1.5)
        assert d.std()[0] == pytest.approx(2.0)  # falls back to scale

    def test_sampling_location(self):
        d = StudentT(np.array([10.0]), np.array([1.0]), 8.0)
        samples = d.sample(20000, np.random.default_rng(1))
        assert np.median(samples) == pytest.approx(10.0, abs=0.1)

    def test_log_prob_matches_scipy(self):
        d = StudentT(np.array([1.0]), np.array([0.5]), 6.0)
        assert d.log_prob(np.array([2.0]))[0] == pytest.approx(
            stats.t.logpdf(2.0, 6.0, 1.0, 0.5)
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            StudentT(np.array([0.0]), np.array([-1.0]), 3.0)
        with pytest.raises(ValueError):
            StudentT(np.array([0.0]), np.array([1.0]), 0.0)


class TestEmpirical:
    def test_quantile_interpolates_samples(self):
        d = Empirical(np.arange(101.0)[:, None])
        assert d.quantile(0.5)[0] == pytest.approx(50.0)
        assert d.quantile(0.9)[0] == pytest.approx(90.0)

    def test_mean_std(self):
        samples = np.random.default_rng(2).normal(5.0, 2.0, size=(50000, 1))
        d = Empirical(samples)
        assert d.mean()[0] == pytest.approx(5.0, abs=0.05)
        assert d.std()[0] == pytest.approx(2.0, abs=0.05)

    def test_batched_quantiles(self):
        samples = np.stack([np.arange(11.0), np.arange(11.0) * 2], axis=1)
        d = Empirical(samples)
        np.testing.assert_allclose(d.quantile(0.5), [5.0, 10.0])

    def test_resampling(self):
        d = Empirical(np.array([[1.0], [2.0], [3.0]]))
        out = d.sample(100, np.random.default_rng(3))
        assert set(np.unique(out)) <= {1.0, 2.0, 3.0}

    def test_log_prob_peaks_at_mode(self):
        samples = np.random.default_rng(4).normal(0.0, 1.0, size=(5000, 1))
        d = Empirical(samples)
        assert d.log_prob(np.array([0.0]))[0] > d.log_prob(np.array([3.0]))[0]

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            Empirical(np.array([[1.0]]))
