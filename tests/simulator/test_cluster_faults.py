"""Tests for cluster-layer fault injection (actuation failures)."""

import pytest

from repro.faults import ClusterFaultInjector, FaultSchedule
from repro.simulator import DisaggregatedCluster, SharedStorage, Simulation

INTERVAL = 600.0


def make_cluster(spec, initial_nodes=2):
    injector = ClusterFaultInjector(
        FaultSchedule.parse(spec), interval_seconds=INTERVAL
    )
    simulation = Simulation()
    cluster = DisaggregatedCluster(
        simulation,
        SharedStorage(jitter_fraction=0.0),
        initial_nodes=initial_nodes,
        fault_injector=injector,
    )
    return simulation, cluster


class TestInjectorHooks:
    def test_interval_of_converts_clock(self):
        injector = ClusterFaultInjector(FaultSchedule(), interval_seconds=600.0)
        assert injector.interval_of(0.0) == 0
        assert injector.interval_of(599.9) == 0
        assert injector.interval_of(600.0) == 1
        # Float drift just below a boundary still lands on it.
        assert injector.interval_of(1200.0 - 1e-7) == 2

    def test_hooks_reflect_schedule(self):
        injector = ClusterFaultInjector(
            FaultSchedule.parse(
                "provision_fail@1,warmup_stall@2:5,warmup_fail@3,node_crash@4"
            ),
            interval_seconds=600.0,
        )
        assert injector.provision_fails(600.0)
        assert not injector.provision_fails(0.0)
        assert injector.warmup_multiplier(1200.0) == 5.0
        assert injector.warmup_multiplier(0.0) == 1.0
        assert injector.warmup_fails(1800.0)
        assert injector.crashes_at(4) == 1
        assert injector.crashes_at(5) == 0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            ClusterFaultInjector(FaultSchedule(), interval_seconds=0.0)


class TestProvisionFail:
    def test_attach_rejected_during_faulted_interval(self):
        simulation, cluster = make_cluster("provision_fail@0")
        cluster.scale_to(4)
        assert cluster.attached_nodes() == 2  # both attaches rejected
        assert cluster.provision_failures == 2
        assert cluster.failures == 2

    def test_retry_succeeds_next_interval(self):
        simulation, cluster = make_cluster("provision_fail@0")
        cluster.scale_to(3)
        simulation.run(until=INTERVAL)
        cluster.scale_to(3)  # shortfall noticed, attach retried
        assert cluster.attached_nodes() == 3


class TestWarmupStall:
    def test_stall_multiplies_warmup_duration(self):
        simulation, cluster = make_cluster("warmup_stall@0:10")
        cluster.scale_to(3)
        nominal = cluster.storage.expected_warmup_seconds()
        simulation.run(until=2 * nominal)
        assert cluster.serving_nodes() == 2  # still warming at 2x nominal
        simulation.run(until=11 * nominal)
        assert cluster.serving_nodes() == 3  # done after 10x

    def test_stall_only_affects_its_interval(self):
        simulation, cluster = make_cluster("warmup_stall@0:10")
        simulation.run(until=INTERVAL)
        cluster.scale_to(3)  # attach in interval 1: nominal warm-up
        simulation.run(until=INTERVAL + 2 * cluster.storage.expected_warmup_seconds())
        assert cluster.serving_nodes() == 3


class TestWarmupFail:
    def test_wedged_node_never_serves(self):
        simulation, cluster = make_cluster("warmup_fail@0")
        cluster.scale_to(3)
        simulation.run(until=INTERVAL)
        assert cluster.serving_nodes() == 2
        assert cluster.attached_nodes() == 2  # the wedged node was released
        assert cluster.warmup_failures == 1
        assert cluster.failures == 1

    def test_replacement_can_be_attached_later(self):
        simulation, cluster = make_cluster("warmup_fail@0")
        cluster.scale_to(3)
        simulation.run(until=INTERVAL)
        cluster.scale_to(3)
        simulation.run(until=2 * INTERVAL)
        assert cluster.serving_nodes() == 3


class TestAggregateCounter:
    def test_failures_sums_all_kinds(self):
        simulation, cluster = make_cluster(
            "provision_fail@0,warmup_fail@1", initial_nodes=3
        )
        cluster.scale_to(4)  # rejected (provision_fail@0)
        simulation.run(until=INTERVAL)
        cluster.scale_to(4)  # attaches, then wedges (warmup_fail@1)
        simulation.run(until=2 * INTERVAL)
        cluster.fail_node()  # abrupt crash on top
        assert cluster.provision_failures == 1
        assert cluster.warmup_failures == 1
        assert cluster.node_crashes == 1
        assert cluster.failures == 3

    def test_no_injector_means_no_failures(self):
        simulation = Simulation()
        cluster = DisaggregatedCluster(
            simulation, SharedStorage(jitter_fraction=0.0), initial_nodes=2
        )
        cluster.scale_to(5)
        simulation.run(until=INTERVAL)
        assert cluster.failures == 0
        assert cluster.serving_nodes() == 5
