"""Tests for the M/M/c QoS model (Section V-B extension)."""

import math

import numpy as np
import pytest

from repro.core import ScalingPlan
from repro.simulator import MMcQueue, evaluate_qos


class TestMMcQueue:
    def test_mm1_mean_wait_known_formula(self):
        """M/M/1: W_q = rho / (mu - lambda)."""
        queue = MMcQueue(arrival_rate=8.0, service_rate=10.0, servers=1)
        rho = 0.8
        expected = rho / (10.0 - 8.0)
        assert queue.mean_wait() == pytest.approx(expected, rel=1e-9)

    def test_erlang_c_mm1_is_rho(self):
        queue = MMcQueue(arrival_rate=6.0, service_rate=10.0, servers=1)
        assert queue.erlang_c() == pytest.approx(0.6, rel=1e-12)

    def test_erlang_c_decreases_with_servers(self):
        probs = [
            MMcQueue(arrival_rate=80.0, service_rate=10.0, servers=c).erlang_c()
            for c in (9, 12, 16, 24)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_erlang_c_stable_for_many_servers(self):
        queue = MMcQueue(arrival_rate=3000.0, service_rate=10.0, servers=320)
        assert 0.0 <= queue.erlang_c() <= 1.0
        assert math.isfinite(queue.mean_wait())

    def test_unstable_queue_infinite_wait(self):
        queue = MMcQueue(arrival_rate=25.0, service_rate=10.0, servers=2)
        assert not queue.is_stable
        assert queue.mean_wait() == math.inf
        assert queue.response_quantile(0.99) == math.inf

    def test_wait_quantile_zero_below_wait_probability(self):
        queue = MMcQueue(arrival_rate=2.0, service_rate=10.0, servers=4)
        # Erlang-C is tiny; the median wait is exactly zero.
        assert queue.wait_quantile(0.5) == 0.0

    def test_wait_quantile_monotone(self):
        queue = MMcQueue(arrival_rate=35.0, service_rate=10.0, servers=4)
        q90 = queue.wait_quantile(0.90)
        q99 = queue.wait_quantile(0.99)
        assert q99 > q90 >= 0.0

    def test_wait_tail_consistency(self):
        """P(W_q > wait_quantile(q)) == 1 - q in the exponential-tail regime."""
        queue = MMcQueue(arrival_rate=37.0, service_rate=10.0, servers=4)
        q = 0.99
        t = queue.wait_quantile(q)
        rate = 4 * 10.0 - 37.0
        prob = queue.erlang_c() * math.exp(-rate * t)
        assert prob == pytest.approx(1.0 - q, rel=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MMcQueue(arrival_rate=-1.0, service_rate=10.0, servers=1)
        with pytest.raises(ValueError):
            MMcQueue(arrival_rate=1.0, service_rate=10.0, servers=0)
        with pytest.raises(ValueError):
            MMcQueue(arrival_rate=1.0, service_rate=10.0, servers=2).wait_quantile(1.0)


class TestEvaluateQoS:
    def test_generous_allocation_meets_slo(self):
        workload = np.full(10, 200.0)  # 2 Erlangs
        plan = ScalingPlan(nodes=np.full(10, 8, dtype=int), threshold=60.0)
        report = evaluate_qos(plan, workload, service_rate=100.0, slo_seconds=0.05)
        assert report.slo_violation_rate == 0.0
        assert report.unstable_intervals == 0

    def test_starved_allocation_violates(self):
        workload = np.full(10, 500.0)  # 5 Erlangs on 4 nodes: unstable
        plan = ScalingPlan(nodes=np.full(10, 4, dtype=int), threshold=60.0)
        report = evaluate_qos(plan, workload, service_rate=100.0, slo_seconds=0.05)
        assert report.unstable_intervals == 10
        assert report.slo_violation_rate == 1.0

    def test_more_nodes_lower_latency(self):
        workload = np.full(5, 450.0)
        tight = ScalingPlan(nodes=np.full(5, 5, dtype=int), threshold=60.0)
        roomy = ScalingPlan(nodes=np.full(5, 9, dtype=int), threshold=60.0)
        tight_qos = evaluate_qos(tight, workload)
        roomy_qos = evaluate_qos(roomy, workload)
        assert roomy_qos.mean_p99 < tight_qos.mean_p99

    def test_shape_mismatch_rejected(self):
        plan = ScalingPlan(nodes=np.ones(3, dtype=int), threshold=60.0)
        with pytest.raises(ValueError):
            evaluate_qos(plan, np.ones(4))

    def test_threshold_sixty_implies_stability(self):
        """Allocating at theta=60% always keeps rho <= 0.6 < 1."""
        rng = np.random.default_rng(0)
        workload = rng.uniform(50, 4000, size=50)
        from repro.core import solve_closed_form

        plan = solve_closed_form(workload, 60.0)
        report = evaluate_qos(plan, workload)
        assert report.unstable_intervals == 0
