"""Edge-case tests for replay_plan: cold starts, zero load, warm-up limits."""

import numpy as np
import pytest

from repro.core import ScalingPlan
from repro.faults import FaultSchedule
from repro.simulator import SharedStorage, replay_plan


def make_plan(nodes, threshold=60.0):
    return ScalingPlan(
        nodes=np.asarray(nodes, dtype=np.int64),
        threshold=threshold,
        strategy="test",
    )


def storage():
    return SharedStorage(jitter_fraction=0.0)


class TestZeroWorkload:
    def test_zero_workload_never_violates(self):
        result = replay_plan(
            make_plan([2, 2, 2]), np.zeros(3), storage=storage()
        )
        assert result.violation_rate == 0.0
        assert all(o.per_node_workload == 0.0 for o in result.outcomes)

    def test_zero_workload_with_cold_start(self):
        # Scaling out into zero demand: warming nodes cannot cause a
        # violation when there is nothing to serve.
        result = replay_plan(
            make_plan([5, 5]), np.zeros(2), storage=storage(), initial_nodes=1
        )
        assert result.violation_rate == 0.0
        assert result.scale_out_events == 1

    def test_zero_then_load_still_scored(self):
        result = replay_plan(
            make_plan([1, 1]), np.array([0.0, 600.0]), storage=storage()
        )
        assert [o.violated for o in result.outcomes] == [False, True]


class TestColdStart:
    # Short intervals make warm-up (~4.1 s with the default storage and
    # no jitter) a visible fraction of the interval.
    INTERVAL = 10.0

    def test_initial_nodes_below_first_target_warm_up(self):
        result = replay_plan(
            make_plan([4, 4]),
            np.array([0.0, 0.0]),
            interval_seconds=self.INTERVAL,
            storage=storage(),
            initial_nodes=1,
        )
        first, second = result.outcomes
        assert first.serving_nodes_start == 1
        assert 1.0 < first.effective_nodes < 4.0
        assert second.effective_nodes == pytest.approx(4.0)

    def test_warmup_limited_violation_classified(self):
        # 200 load over ~2.76 effective nodes violates theta=60, but
        # 200/4 targets = 50 would not: the violation is warm-up limited.
        result = replay_plan(
            make_plan([4, 4]),
            np.array([200.0, 200.0]),
            interval_seconds=self.INTERVAL,
            storage=storage(),
            initial_nodes=1,
        )
        first, second = result.outcomes
        assert first.violated and first.warmup_limited
        assert not second.violated
        assert result.warmup_limited_violations == 1

    def test_genuine_underprovision_not_blamed_on_warmup(self):
        # 300/4 = 75 > theta even with every target serving: this
        # violation is the plan's fault, not the warm-up's.
        result = replay_plan(
            make_plan([4]),
            np.array([300.0]),
            interval_seconds=self.INTERVAL,
            storage=storage(),
            initial_nodes=1,
        )
        (outcome,) = result.outcomes
        assert outcome.violated and not outcome.warmup_limited

    def test_warmup_limited_boundary_is_inclusive(self):
        # workload / target == theta exactly: still warm-up limited.
        result = replay_plan(
            make_plan([4]),
            np.array([240.0]),
            interval_seconds=self.INTERVAL,
            storage=storage(),
            initial_nodes=1,
        )
        (outcome,) = result.outcomes
        assert outcome.violated and outcome.warmup_limited


class TestValidationAndFaults:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            replay_plan(make_plan([1, 1]), np.zeros(3))

    def test_failure_counters_zero_without_schedule(self):
        result = replay_plan(make_plan([2, 2]), np.zeros(2), storage=storage())
        assert result.failures == 0
        assert result.node_failures == 0

    def test_node_crash_recorded_and_survived(self):
        result = replay_plan(
            make_plan([3, 3, 3]),
            np.full(3, 90.0),
            storage=storage(),
            faults=FaultSchedule.parse("node_crash@1"),
        )
        assert result.node_failures == 1
        assert result.failures == 1
        # The crashed node's replacement warms up within the interval,
        # so the 600 s interval barely notices.
        assert result.outcomes[1].effective_nodes > 2.9
