"""Tests for node-failure injection in the cluster."""

import numpy as np
import pytest

from repro.simulator import DisaggregatedCluster, NodeState, SharedStorage, Simulation


def make_cluster(initial=3, warmup=5.0):
    sim = Simulation()
    storage = SharedStorage(
        checkpoint_gb=warmup, rebuild_bandwidth_gbps=1.0,
        attach_latency_s=0.0, jitter_fraction=0.0,
    )
    return sim, DisaggregatedCluster(sim, storage, initial_nodes=initial)


class TestFailNode:
    def test_failure_drops_serving_capacity(self):
        sim, cluster = make_cluster(initial=3)
        cluster.fail_node(replace=True)
        assert cluster.serving_nodes() == 2  # replacement still warming
        assert cluster.attached_nodes() == 3
        sim.run(until=6.0)
        assert cluster.serving_nodes() == 3  # replacement warmed

    def test_failure_without_replacement(self):
        sim, cluster = make_cluster(initial=3)
        cluster.fail_node(replace=False)
        sim.run(until=10.0)
        assert cluster.serving_nodes() == 2
        assert cluster.attached_nodes() == 2

    def test_oldest_node_killed_by_default(self):
        sim, cluster = make_cluster(initial=2)
        victim = cluster.fail_node(replace=False)
        assert victim.node_id == 0

    def test_specific_node(self):
        sim, cluster = make_cluster(initial=3)
        victim = cluster.fail_node(node_id=1, replace=False)
        assert victim.node_id == 1
        assert victim.state is NodeState.RELEASED

    def test_unknown_node_rejected(self):
        sim, cluster = make_cluster(initial=2)
        with pytest.raises(ValueError):
            cluster.fail_node(node_id=99)

    def test_failure_counter(self):
        sim, cluster = make_cluster(initial=3)
        cluster.fail_node()
        cluster.fail_node()
        assert cluster.failures == 2

    def test_failing_last_node_then_replacement_serves(self):
        sim, cluster = make_cluster(initial=1)
        cluster.fail_node(replace=True)
        assert cluster.serving_nodes() == 0
        sim.run(until=6.0)
        assert cluster.serving_nodes() == 1

    def test_no_serving_node_rejected(self):
        sim, cluster = make_cluster(initial=1)
        cluster.fail_node(replace=False)
        with pytest.raises(RuntimeError):
            cluster.fail_node()

    def test_capacity_gap_during_replacement_warmup(self):
        """During the warm-up window the cluster truly runs short —
        the transient the paper's seconds-scale warm-up claim bounds."""
        sim, cluster = make_cluster(initial=4, warmup=8.0)
        sim.run(until=100.0)
        cluster.fail_node(replace=True)
        start = sim.now
        sim.run(until=start + 60.0)
        serving_seconds = sum(
            node.serving_seconds(start, sim.now) for node in cluster.nodes
        )
        # 3 nodes for 8 s, then 4 nodes for 52 s.
        assert serving_seconds == pytest.approx(3 * 8.0 + 4 * 52.0, rel=0.01)
