"""Tests for the event engine, storage, nodes, cluster, and replay."""

import numpy as np
import pytest

from repro.core import ScalingPlan
from repro.simulator import (
    ComputeNode,
    DisaggregatedCluster,
    NodeState,
    SharedStorage,
    Simulation,
    replay_plan,
)


class TestSimulation:
    def test_events_fire_in_time_order(self):
        sim = Simulation()
        fired = []
        sim.schedule(5.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.run()
        assert fired == ["a", "b"]
        assert sim.now == 5.0

    def test_same_time_fifo(self):
        sim = Simulation()
        fired = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_run_until_pauses(self):
        sim = Simulation()
        fired = []
        sim.schedule(10.0, lambda: fired.append("late"))
        sim.run(until=5.0)
        assert fired == []
        assert sim.now == 5.0
        sim.run()
        assert fired == ["late"]

    def test_events_can_schedule_events(self):
        sim = Simulation()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.schedule(1.0, chain)

        sim.schedule(1.0, chain)
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_rejects_past_scheduling(self):
        sim = Simulation()
        sim.now = 10.0
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)


class TestSharedStorage:
    def test_warmup_is_seconds_scale(self):
        """Figure 5's claim: warm-up takes a few seconds."""
        storage = SharedStorage()
        assert 1.0 < storage.expected_warmup_seconds() < 30.0

    def test_warmup_scales_with_checkpoint(self):
        small = SharedStorage(checkpoint_gb=1.0, jitter_fraction=0.0)
        large = SharedStorage(checkpoint_gb=16.0, jitter_fraction=0.0)
        assert large.expected_warmup_seconds() > small.expected_warmup_seconds()

    def test_no_jitter_deterministic(self):
        storage = SharedStorage(jitter_fraction=0.0)
        assert storage.warmup_seconds() == storage.expected_warmup_seconds()

    def test_jitter_bounded(self):
        storage = SharedStorage(jitter_fraction=0.2, seed=1)
        base = storage.expected_warmup_seconds()
        for _ in range(100):
            assert 0.8 * base <= storage.warmup_seconds() <= 1.2 * base

    def test_attach_counter(self):
        storage = SharedStorage()
        storage.warmup_seconds()
        storage.warmup_seconds()
        assert storage.total_attaches == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SharedStorage(rebuild_bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            SharedStorage(jitter_fraction=1.0)


class TestComputeNode:
    def test_lifecycle(self):
        node = ComputeNode(node_id=0, attached_at=0.0, warmup_seconds=5.0)
        assert node.state is NodeState.WARMING
        assert not node.is_serving(4.0)
        node.activate(5.0)
        assert node.is_serving(5.0)
        node.release(10.0)
        assert not node.is_serving(11.0)

    def test_early_activation_rejected(self):
        node = ComputeNode(0, 0.0, 5.0)
        with pytest.raises(RuntimeError):
            node.activate(3.0)

    def test_double_release_rejected(self):
        node = ComputeNode(0, 0.0, 0.0)
        node.release(1.0)
        with pytest.raises(RuntimeError):
            node.release(2.0)

    def test_node_seconds_billing(self):
        node = ComputeNode(0, attached_at=2.0, warmup_seconds=1.0)
        node.release(7.0)
        assert node.node_seconds(until=100.0) == pytest.approx(5.0)
        assert node.node_seconds(until=4.0) == pytest.approx(2.0)


class TestCluster:
    def make(self, initial=2, warmup=5.0):
        sim = Simulation()
        storage = SharedStorage(
            checkpoint_gb=warmup, rebuild_bandwidth_gbps=1.0,
            attach_latency_s=0.0, jitter_fraction=0.0,
        )
        return sim, DisaggregatedCluster(sim, storage, initial_nodes=initial)

    def test_initial_nodes_serving(self):
        _, cluster = self.make(initial=3)
        assert cluster.serving_nodes() == 3

    def test_scale_out_serves_after_warmup(self):
        sim, cluster = self.make(initial=1, warmup=5.0)
        cluster.scale_to(3)
        assert cluster.serving_nodes() == 1  # still warming
        assert cluster.attached_nodes() == 3
        sim.run(until=6.0)
        assert cluster.serving_nodes() == 3

    def test_scale_in_immediate(self):
        sim, cluster = self.make(initial=4)
        cluster.scale_to(2)
        assert cluster.serving_nodes() == 2

    def test_scale_in_releases_newest_first(self):
        sim, cluster = self.make(initial=1, warmup=5.0)
        sim.run(until=10.0)
        cluster.scale_to(2)  # node 1 attaches at t=10
        sim.run(until=20.0)
        cluster.scale_to(1)  # should drop the newer node
        alive = [n for n in cluster.nodes if n.state is not NodeState.RELEASED]
        assert len(alive) == 1
        assert alive[0].node_id == 0

    def test_release_during_warmup_never_activates(self):
        sim, cluster = self.make(initial=1, warmup=5.0)
        cluster.scale_to(2)
        cluster.scale_to(1)  # release the warming node immediately
        sim.run()  # warm-up event fires but must not raise
        assert cluster.serving_nodes() == 1

    def test_cannot_scale_to_zero(self):
        _, cluster = self.make()
        with pytest.raises(ValueError):
            cluster.scale_to(0)

    def test_scale_events_counted(self):
        sim, cluster = self.make(initial=1)
        cluster.scale_to(3)
        sim.run(until=100.0)
        cluster.scale_to(2)
        assert cluster.scale_out_events == 1
        assert cluster.scale_in_events == 1

    def test_node_seconds_accumulate(self):
        sim, cluster = self.make(initial=2)
        sim.run(until=100.0)
        assert cluster.total_node_seconds() == pytest.approx(200.0)


class TestReplay:
    def test_perfect_plan_no_violations_long_intervals(self):
        # Not exact multiples of theta: razor-edge demand (w == c * theta)
        # legitimately flickers during the seconds of warm-up.
        w = np.array([110.0, 205.0, 290.0, 195.0])
        from repro.core import solve_closed_form

        plan = solve_closed_form(w, 60.0)
        result = replay_plan(plan, w, interval_seconds=600.0)
        assert result.violation_rate == 0.0
        assert len(result.outcomes) == 4

    def test_underprovisioned_plan_violates(self):
        w = np.full(3, 600.0)
        plan = ScalingPlan(nodes=np.array([1, 1, 1]), threshold=60.0)
        result = replay_plan(plan, w)
        assert result.violation_rate == 1.0

    def test_warmup_limited_violation_detected(self):
        """With sub-warm-up intervals, scale-outs arrive late."""
        w = np.array([60.0, 600.0])
        from repro.core import solve_closed_form

        plan = solve_closed_form(w, 60.0)  # 1 then 10 nodes
        storage = SharedStorage(
            checkpoint_gb=8.0, rebuild_bandwidth_gbps=1.0,
            attach_latency_s=0.0, jitter_fraction=0.0,
        )  # 8s warm-up
        result = replay_plan(plan, w, interval_seconds=1.0, storage=storage)
        second = result.outcomes[1]
        assert second.violated
        assert second.warmup_limited

    def test_warmup_negligible_at_paper_interval(self):
        """The paper's justification: at 10-minute intervals the
        seconds-scale warm-up is negligible — rare hairline transients
        only, every one attributable to warm-up and within 0.5% of the
        threshold."""
        rng = np.random.default_rng(0)
        w = rng.uniform(100, 2000, size=50)
        from repro.core import solve_closed_form

        plan = solve_closed_form(w, 60.0)
        result = replay_plan(plan, w, interval_seconds=600.0)
        assert result.violation_rate <= 0.05
        for outcome in result.outcomes:
            if outcome.violated:
                assert outcome.warmup_limited
                assert outcome.per_node_workload < 60.0 * 1.005

    def test_warmup_violations_explode_at_short_intervals(self):
        """Shrinking the interval toward the warm-up time makes scaling
        overhead dominant — the flip side of the paper's argument."""
        rng = np.random.default_rng(0)
        w = rng.uniform(100, 2000, size=50)
        from repro.core import solve_closed_form

        plan = solve_closed_form(w, 60.0)
        long_run = replay_plan(plan, w, interval_seconds=600.0)
        short_run = replay_plan(plan, w, interval_seconds=10.0)
        assert short_run.violation_rate > long_run.violation_rate

    def test_node_seconds_scale_with_plan(self):
        w = np.full(4, 300.0)
        plan = ScalingPlan(nodes=np.full(4, 5, dtype=int), threshold=60.0)
        result = replay_plan(plan, w, interval_seconds=100.0)
        assert result.total_node_seconds == pytest.approx(5 * 400.0, rel=0.05)

    def test_shape_mismatch_rejected(self):
        plan = ScalingPlan(nodes=np.ones(3, dtype=int), threshold=60.0)
        with pytest.raises(ValueError):
            replay_plan(plan, np.ones(4))

    def test_initial_nodes_override(self):
        w = np.array([600.0, 600.0])
        plan = ScalingPlan(nodes=np.array([10, 10]), threshold=60.0)
        storage = SharedStorage(jitter_fraction=0.0)
        # Starting cold with 1 node: first interval is warm-up limited.
        result = replay_plan(
            plan, w, interval_seconds=1.0, storage=storage, initial_nodes=1
        )
        assert result.outcomes[0].violated
